"""Thread-aware hierarchical span tracer with Chrome-trace export.

The tracer is a process-wide singleton, disabled by default.  Instrumented
code wraps phases in spans::

    from repro.obs import trace

    with trace.span("mttkrp.parallel", mode=m) as sp:
        ...
        sp.note(strategy=run.strategy)   # attach args discovered mid-span

When tracing is disabled, :func:`span` returns a shared no-op context
manager — one global load and an attribute check, no event allocation — so
instrumentation can stay on hot paths permanently.  When enabled, each span
records ``time.perf_counter_ns`` start/duration, the OS thread, and its
nesting depth (tracked per-thread through a :class:`contextvars.ContextVar`,
so concurrent executor tasks nest independently).

Exporters:

* :func:`to_chrome_trace` / :func:`save` — Chrome trace-event JSON
  (``"X"`` complete events + thread-name metadata), loadable in Perfetto or
  ``chrome://tracing``;
* :func:`report` — flat per-name aggregate lines (like ``Stopwatch``);
* :func:`to_stopwatch` — the same aggregate as a live
  :class:`~repro.util.timing.Stopwatch` for code that already consumes one.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..util.timing import Stopwatch, Timer

__all__ = [
    "SpanEvent",
    "Tracer",
    "get_tracer",
    "enabled",
    "enable",
    "disable",
    "clear",
    "span",
    "instant",
    "events",
    "events_between",
    "ingest",
    "open_spans",
    "to_chrome_trace",
    "save",
    "report",
    "to_stopwatch",
    "coverage",
    "wall_seconds",
    "validate_chrome_trace",
]


@dataclass(frozen=True)
class SpanEvent:
    """One completed span (or instant, ``dur_ns == 0`` and ``phase "i"``)."""

    name: str
    start_ns: int
    dur_ns: int
    thread: int          #: OS thread ident (mapped to small tids on export)
    depth: int           #: nesting depth within its thread (0 = top level)
    args: Optional[dict] = None
    phase: str = "X"     #: Chrome trace phase: "X" complete, "i" instant

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns

    @property
    def cat(self) -> str:
        """Trace category = the subsystem prefix of the dotted name."""
        return self.name.split(".", 1)[0]


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **args) -> None:
        """Ignore late args (mirror of :meth:`_LiveSpan.note`)."""


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one :class:`SpanEvent` on exit."""

    __slots__ = ("_tracer", "_name", "_args", "_start_ns", "_depth", "_token")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[dict]):
        self._tracer = tracer
        self._name = name
        self._args = args

    def note(self, **args) -> None:
        """Attach args discovered while the span is open (e.g. a fit)."""
        if self._args is None:
            self._args = args
        else:
            self._args.update(args)

    def __enter__(self) -> "_LiveSpan":
        depth_var = self._tracer._depth
        self._depth = depth_var.get()
        self._token = depth_var.set(self._depth + 1)
        # per-thread open-span stack: read cross-thread by the sampling
        # profiler to scope collapsed stacks to the active span
        self._tracer._open.setdefault(
            threading.get_ident(), []).append(self._name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        dur_ns = time.perf_counter_ns() - self._start_ns
        self._tracer._depth.reset(self._token)
        stack = self._tracer._open.get(threading.get_ident())
        if stack:
            stack.pop()
        self._tracer._record(SpanEvent(
            name=self._name, start_ns=self._start_ns, dur_ns=dur_ns,
            thread=threading.get_ident(), depth=self._depth,
            args=self._args))
        return False


class Tracer:
    """Span collector; usually used through the module-level singleton."""

    def __init__(self) -> None:
        self.enabled = False
        self._events: List[SpanEvent] = []
        self._lock = threading.Lock()
        self._depth: ContextVar[int] = ContextVar("repro_obs_depth", default=0)
        self._main_thread = threading.get_ident()
        #: thread ident -> names of the spans currently open on it
        self._open: Dict[int, List[str]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def enable(self, clear: bool = True) -> None:
        if clear:
            self.clear()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def span(self, name: str, **args):
        """Open a span; a no-op singleton when tracing is disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, args or None)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        self._record(SpanEvent(
            name=name, start_ns=time.perf_counter_ns(), dur_ns=0,
            thread=threading.get_ident(), depth=self._depth.get(),
            args=args or None, phase="i"))

    def _record(self, event: SpanEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> List[SpanEvent]:
        """Snapshot of the recorded events (completion order)."""
        with self._lock:
            return list(self._events)

    def events_between(self, start_ns: int, end_ns: int) -> List[SpanEvent]:
        """Events whose lifetime overlaps ``[start_ns, end_ns]``.

        The serve daemon uses this to carve one job's spans (including the
        ``proc-N`` lanes merged from workers) out of the shared tracer for
        per-job trace download.
        """
        with self._lock:
            return [e for e in self._events
                    if e.start_ns <= end_ns and e.end_ns >= start_ns]

    def ingest(self, events: List[SpanEvent]) -> None:
        """Merge externally-recorded spans (e.g. shipped from a worker
        process).  Negative ``thread`` idents are reserved for process
        workers and rendered as ``proc-N`` lanes; no-op while disabled."""
        if not self.enabled:
            return
        with self._lock:
            self._events.extend(events)

    @property
    def nevents(self) -> int:
        with self._lock:
            return len(self._events)

    def open_spans(self, thread_ident: int) -> tuple:
        """Names of the spans currently open on one thread, outermost
        first (empty while disabled or between spans).  Read cross-thread
        by :mod:`repro.obs.sampler` — a plain tuple() snapshot under the
        GIL, so no lock is needed on the span hot path."""
        stack = self._open.get(thread_ident)
        return tuple(stack) if stack else ()

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def _tid_map(self, evts: List[SpanEvent]) -> Dict[int, int]:
        """OS thread idents -> small stable tids (main thread first)."""
        tids: Dict[int, int] = {}
        if any(e.thread == self._main_thread for e in evts):
            tids[self._main_thread] = 0
        for e in sorted(evts, key=lambda e: e.start_ns):
            tids.setdefault(e.thread, len(tids))
        return tids

    def to_chrome_trace(self,
                        events: Optional[List[SpanEvent]] = None) -> dict:
        """The trace as a Chrome trace-event JSON object (dict).

        ``events`` restricts the export to a precomputed subset (e.g. one
        job's window from :meth:`events_between`); default is everything.
        """
        evts = self.events() if events is None else list(events)
        pid = os.getpid()
        tids = self._tid_map(evts)
        out = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": "repro"}}]
        for ident, tid in tids.items():
            if ident == self._main_thread:
                label = "main"
            elif ident < 0:
                label = f"proc-{-ident - 1}"
            else:
                label = f"worker-{tid}"
            out.append({"name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"name": label}})
        t0 = min((e.start_ns for e in evts), default=0)
        for e in sorted(evts, key=lambda e: (e.start_ns, -e.dur_ns)):
            rec = {"name": e.name, "cat": e.cat, "ph": e.phase,
                   "ts": (e.start_ns - t0) / 1e3, "pid": pid,
                   "tid": tids[e.thread], "args": e.args or {}}
            if e.phase == "X":
                rec["dur"] = e.dur_ns / 1e3
            else:
                rec["s"] = "t"  # instant scope: thread
            out.append(rec)
        return {"traceEvents": out, "displayTimeUnit": "ms"}

    def save(self, path) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, default=_jsonable)

    def report(self) -> List[str]:
        """Per-name aggregate lines, largest total first."""
        totals: Dict[str, Timer] = {}
        for e in self.events():
            if e.phase != "X":
                continue
            t = totals.setdefault(e.name, Timer())
            t.elapsed += e.dur_ns / 1e9
            t.count += 1
        rows = sorted(totals.items(), key=lambda kv: -kv[1].elapsed)
        return [
            f"{name:<28s} {t.elapsed * 1e3:10.3f} ms  ({t.count} calls, "
            f"{t.mean * 1e3:.3f} ms mean)"
            for name, t in rows
        ]

    def to_stopwatch(self) -> Stopwatch:
        """The same aggregate as a :class:`~repro.util.timing.Stopwatch`."""
        sw = Stopwatch()
        for e in self.events():
            if e.phase != "X":
                continue
            t = sw.timers.setdefault(e.name, Timer())
            t.elapsed += e.dur_ns / 1e9
            t.count += 1
        return sw

    # ------------------------------------------------------------------
    # coverage accounting (the acceptance criterion's >= 95%)
    # ------------------------------------------------------------------
    def wall_seconds(self) -> float:
        """Span of wall time between the first start and the last end."""
        evts = [e for e in self.events() if e.phase == "X"]
        if not evts:
            return 0.0
        lo = min(e.start_ns for e in evts)
        hi = max(e.end_ns for e in evts)
        return (hi - lo) / 1e9

    def coverage(self) -> float:
        """Fraction of wall time covered by top-level (depth-0) spans.

        The union of depth-0 span intervals across all threads, divided by
        the first-start-to-last-end wall time.  1.0 when a root span wraps
        the whole run (the CLI's ``cli.<command>`` span).
        """
        evts = [e for e in self.events() if e.phase == "X"]
        if not evts:
            return 0.0
        tops = sorted(((e.start_ns, e.end_ns) for e in evts if e.depth == 0))
        covered = 0
        cur_lo, cur_hi = tops[0]
        for lo, hi in tops[1:]:
            if lo > cur_hi:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        covered += cur_hi - cur_lo
        wall = (max(e.end_ns for e in evts) - min(e.start_ns for e in evts))
        return covered / wall if wall else 1.0


def _jsonable(value):
    """JSON fallback: NumPy scalars and anything else via float/str."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def validate_chrome_trace(doc: dict) -> List[str]:
    """Schema-check a Chrome trace-event document; returns problem strings.

    Used by tests and the CI traced-smoke guard — an empty list means the
    trace is loadable by Perfetto/``chrome://tracing``.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document must be an object with a 'traceEvents' array"]
    evts = doc["traceEvents"]
    if not isinstance(evts, list):
        return ["'traceEvents' must be an array"]
    for i, e in enumerate(evts):
        where = f"event {i}"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                problems.append(f"{where}: missing {key!r}")
        ph = e.get("ph")
        if ph not in ("X", "M", "i", "B", "E", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
        if ph in ("X", "i"):
            if not isinstance(e.get("ts"), (int, float)) or e["ts"] < 0:
                problems.append(f"{where}: bad ts {e.get('ts')!r}")
        if ph == "X":
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                problems.append(f"{where}: bad dur {e.get('dur')!r}")
        if "args" in e and not isinstance(e["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


# ----------------------------------------------------------------------
# module-level singleton API (what instrumented code imports)
# ----------------------------------------------------------------------
_GLOBAL = Tracer()


def get_tracer() -> Tracer:
    return _GLOBAL


def enabled() -> bool:
    return _GLOBAL.enabled


def enable(clear: bool = True) -> None:
    _GLOBAL.enable(clear=clear)


def disable() -> None:
    _GLOBAL.disable()


def clear() -> None:
    _GLOBAL.clear()


def span(name: str, **args):
    """Open a span on the global tracer (no-op singleton when disabled)."""
    if not _GLOBAL.enabled:
        return _NULL_SPAN
    return _LiveSpan(_GLOBAL, name, args or None)


def instant(name: str, **args) -> None:
    _GLOBAL.instant(name, **args)


def events() -> List[SpanEvent]:
    return _GLOBAL.events()


def events_between(start_ns: int, end_ns: int) -> List[SpanEvent]:
    return _GLOBAL.events_between(start_ns, end_ns)


def ingest(evts: List[SpanEvent]) -> None:
    _GLOBAL.ingest(evts)


def open_spans(thread_ident: int) -> tuple:
    return _GLOBAL.open_spans(thread_ident)


def to_chrome_trace(events: Optional[List[SpanEvent]] = None) -> dict:
    return _GLOBAL.to_chrome_trace(events)


def save(path) -> None:
    _GLOBAL.save(path)


def report() -> List[str]:
    return _GLOBAL.report()


def to_stopwatch() -> Stopwatch:
    return _GLOBAL.to_stopwatch()


def coverage() -> float:
    return _GLOBAL.coverage()


def wall_seconds() -> float:
    return _GLOBAL.wall_seconds()
