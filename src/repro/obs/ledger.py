"""Persistent perf ledger: append-only history + rolling regression gate.

Every bench / ``check_regression.py`` run appends one structured record to
``benchmarks/results/history.jsonl``::

    {"ts": 1754660000.0, "sha": "22b4694", "source": "bench_mttkrp_par",
     "host": "ci-runner", "cores": 4, "labels": {"backend": "process"},
     "series": {"mttkrp/planned": 0.0042, "mttkrp/legacy": 0.0161}}

``series`` maps a labeled series name to a lower-is-better scalar
(seconds; geomeans when a record covers several datasets).  Unlike the
point-in-time ``BENCH_*.json`` artifacts the next run overwrites, the
ledger only grows — giving the repo a perf *trajectory*.

:func:`detect_regressions` compares the newest record against a rolling
baseline (the median of each series' previous ``window`` values), flagging
anything more than ``threshold`` slower.  The median absorbs single noisy
entries; a fresh series with fewer than ``min_baseline`` prior points is
reported as NEW, never flagged.  :func:`delta_table` renders the same
comparison as a Markdown table for ``$GITHUB_STEP_SUMMARY``.

CLI (used by the ``obs-smoke`` CI job)::

    python -m repro.obs.ledger benchmarks/results/history.jsonl          # table
    python -m repro.obs.ledger benchmarks/results/history.jsonl --check  # gate
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_WINDOW",
    "DEFAULT_THRESHOLD",
    "Regression",
    "git_sha",
    "append_record",
    "read_history",
    "series_from_bench",
    "detect_regressions",
    "delta_table",
]

#: rolling-baseline width (records per series)
DEFAULT_WINDOW = 5
#: current/baseline ratio above 1 + this flags a regression
DEFAULT_THRESHOLD = 0.10
#: prior points a series needs before the detector will judge it
MIN_BASELINE = 2


@dataclass(frozen=True)
class Regression:
    """One series of the newest record that breached the threshold."""

    series: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else math.inf

    @property
    def pct(self) -> float:
        return (self.ratio - 1.0) * 100.0

    def __str__(self) -> str:
        return (f"{self.series}: {self.current:.6g}s vs rolling baseline "
                f"{self.baseline:.6g}s (+{self.pct:.1f}%)")


def git_sha(cwd=None) -> str:
    """Short git SHA of the working tree (``"unknown"`` outside a repo)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10)
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_record(path, series: Dict[str, float],
                  labels: Optional[dict] = None, source: str = "",
                  sha: Optional[str] = None,
                  extra: Optional[dict] = None) -> dict:
    """Append one ledger record (creating the file and parents) and
    return it.  ``series`` values must be lower-is-better scalars."""
    path = Path(path)
    record = {
        "ts": time.time(),
        "sha": sha if sha is not None else git_sha(cwd=path.parent),
        "source": source,
        "host": platform.node(),
        "cores": os.cpu_count(),
        "labels": {str(k): str(v) for k, v in (labels or {}).items()},
        "series": {str(k): float(v) for k, v in series.items()},
    }
    if extra:
        record.update(extra)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def read_history(path) -> List[dict]:
    """Records oldest-first; malformed lines are skipped, not fatal (the
    ledger is append-only across interrupted runs)."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(rec, dict) and isinstance(rec.get("series"), dict):
                records.append(rec)
    return records


def series_from_bench(records: List[dict]) -> Dict[str, float]:
    """Collapse ``BENCH_*.json`` bench records into ledger series.

    Groups by ``op/variant`` and geomeans ``time_s`` across datasets, so
    one ledger entry summarizes a whole suite sweep."""
    groups: Dict[str, List[float]] = {}
    for rec in records:
        t = rec.get("time_s")
        if not isinstance(t, (int, float)) or t <= 0:
            continue
        key = f"{rec.get('op', 'op')}/{rec.get('variant', 'default')}"
        groups.setdefault(key, []).append(float(t))
    return {key: math.exp(sum(math.log(t) for t in ts) / len(ts))
            for key, ts in sorted(groups.items())}


def _baselines(history: List[dict], window: int) -> Dict[str, List[float]]:
    """series -> prior values (newest-last), excluding the final record."""
    out: Dict[str, List[float]] = {}
    for rec in history[:-1]:
        for name, val in rec["series"].items():
            if isinstance(val, (int, float)) and val > 0:
                out.setdefault(name, []).append(float(val))
    return {name: vals[-window:] for name, vals in out.items()}


def _median(vals: List[float]) -> float:
    ordered = sorted(vals)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2


def detect_regressions(history: List[dict], window: int = DEFAULT_WINDOW,
                       threshold: float = DEFAULT_THRESHOLD,
                       min_baseline: int = MIN_BASELINE) -> List[Regression]:
    """Newest record vs the rolling median of each series' prior values.

    Returns the series that are more than ``threshold`` slower; series
    with fewer than ``min_baseline`` prior points are never flagged."""
    if len(history) < 2:
        return []
    priors = _baselines(history, window)
    current = history[-1]["series"]
    flagged = []
    for name in sorted(current):
        val = current[name]
        if not isinstance(val, (int, float)) or val <= 0:
            continue
        base_vals = priors.get(name, [])
        if len(base_vals) < min_baseline:
            continue
        baseline = _median(base_vals)
        if baseline > 0 and val / baseline > 1.0 + threshold:
            flagged.append(Regression(series=name, baseline=baseline,
                                      current=float(val)))
    return flagged


def delta_table(history: List[dict], window: int = DEFAULT_WINDOW,
                threshold: float = DEFAULT_THRESHOLD) -> str:
    """Markdown baseline-vs-current table of the newest ledger record."""
    if not history:
        return "_perf ledger is empty_\n"
    current = history[-1]
    priors = _baselines(history, window)
    lines = [
        f"### Perf ledger · {current.get('source') or 'latest'} @ "
        f"{current.get('sha', '?')} "
        f"(window={window}, threshold=+{threshold * 100:.0f}%)",
        "",
        "| series | baseline (median) | current | delta | status |",
        "|---|---|---|---|---|",
    ]
    for name in sorted(current["series"]):
        val = current["series"][name]
        base_vals = priors.get(name, [])
        if len(base_vals) < MIN_BASELINE:
            lines.append(f"| `{name}` | — | {val:.6g}s | — | NEW |")
            continue
        baseline = _median(base_vals)
        delta = (val / baseline - 1.0) * 100.0 if baseline else math.inf
        status = "REGRESSION" if delta > threshold * 100.0 else "OK"
        lines.append(f"| `{name}` | {baseline:.6g}s | {val:.6g}s | "
                     f"{delta:+.1f}% | {status} |")
    return "\n".join(lines) + "\n"


def _main(argv: Optional[List[str]] = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        description="render / gate the perf ledger")
    ap.add_argument("path", help="history.jsonl path")
    ap.add_argument("--window", type=int, default=DEFAULT_WINDOW)
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    ap.add_argument("--check", action="store_true",
                    help="exit 1 when the newest record regresses")
    args = ap.parse_args(argv)
    history = read_history(args.path)
    print(delta_table(history, window=args.window,
                      threshold=args.threshold), end="")
    if args.check:
        flagged = detect_regressions(history, window=args.window,
                                     threshold=args.threshold)
        for reg in flagged:
            print(f"REGRESSION: {reg}")
        return 1 if flagged else 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    raise SystemExit(_main())
