"""OpenMetrics text exposition and a stdlib ``/metrics`` scrape endpoint.

Three pieces, all dependency-free:

* :func:`render_openmetrics` — the metrics registry as OpenMetrics text
  (the Prometheus exposition format): counters as ``name_total``, gauges
  verbatim, histograms as ``summary`` families with p50/p95/p99
  ``quantile`` samples plus ``_count``/``_sum``.  Labels — including the
  ``worker="proc-N"`` series merged from process-backend workers — render
  as standard ``{k="v"}`` sets, so one scrape covers the whole
  format x backend x mode x worker space.
* :func:`validate_openmetrics` — a bundled structural parser (CI cannot
  assume a Prometheus install); returns problem strings, empty = valid.
* :class:`MetricsServer` — ``http.server.ThreadingHTTPServer`` on a
  daemon thread serving ``GET /metrics`` and ``GET /healthz``; the first
  brick of the ROADMAP's ``repro.serve`` daemon.  Wired to
  ``--metrics-port`` on every CLI subcommand.

Dotted metric names sanitize to Prometheus-legal ones (``mttkrp.calls`` ->
``mttkrp_calls``); scrape with::

    curl -s http://127.0.0.1:9109/metrics

    # prometheus.yml
    scrape_configs:
      - job_name: repro
        static_configs: [{targets: ["127.0.0.1:9109"]}]
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

from . import metrics

__all__ = [
    "CONTENT_TYPE",
    "render_openmetrics",
    "validate_openmetrics",
    "MetricsServer",
]

#: the OpenMetrics media type (what a Prometheus scraper negotiates)
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: histogram quantiles exposed as summary samples
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def sanitize_name(name: str) -> str:
    """Dotted registry name -> Prometheus-legal metric name."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labelset(pairs) -> str:
    """``[(k, v), ...]`` -> ``{k="v",...}`` (empty string when no pairs)."""
    pairs = [(sanitize_name(k), _escape(str(v))) for k, v in pairs]
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _num(value) -> str:
    """Sample value formatting (int-like values render without exponent)."""
    f = float(value)
    if f != f:  # NaN
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def render_openmetrics(registry: Optional[metrics.MetricsRegistry] = None
                       ) -> str:
    """The registry as OpenMetrics text, terminated by ``# EOF``."""
    reg = registry or metrics.get_registry()
    lines: List[str] = []
    for name, kind, series in reg.export_view():
        mname = sanitize_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {mname} counter")
            for key, val in series:
                lines.append(f"{mname}_total{_labelset(key)} {_num(val)}")
        elif kind == "gauge":
            lines.append(f"# TYPE {mname} gauge")
            for key, val in series:
                lines.append(f"{mname}{_labelset(key)} {_num(val)}")
        else:  # histogram -> summary family (pre-computed quantiles)
            lines.append(f"# TYPE {mname} summary")
            for key, summ in series:
                for q, skey in _QUANTILES:
                    labels = _labelset(list(key) + [("quantile", q)])
                    lines.append(f"{mname}{labels} {_num(summ[skey])}")
                ls = _labelset(key)
                lines.append(f"{mname}_count{ls} {_num(summ['count'])}")
                lines.append(f"{mname}_sum{ls} {_num(summ['total'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# bundled structural validator (CI has no promtool)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN|\+Inf)"
    r"(?: [0-9]+(?:\.[0-9]+)?)?$")
_LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"$')


def _split_labels(body: str) -> Optional[List[str]]:
    """Split a label-set body on unescaped/unquoted commas; None on a
    structurally broken quote sequence."""
    parts, cur, in_str, esc = [], [], False, False
    for ch in body:
        if esc:
            cur.append(ch)
            esc = False
        elif ch == "\\":
            cur.append(ch)
            esc = True
        elif ch == '"':
            cur.append(ch)
            in_str = not in_str
        elif ch == "," and not in_str:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if in_str or esc:
        return None
    if cur or parts:
        parts.append("".join(cur))
    return parts


def validate_openmetrics(text: str) -> List[str]:
    """Structural check of OpenMetrics exposition text.

    Verifies: ``# EOF`` termination, well-formed ``# TYPE`` metadata with
    known types, every sample line parseable (legal metric name, quoted
    and escaped label values, numeric sample value), counter samples using
    the ``_total`` suffix of a declared counter family, no duplicate
    series, and no samples preceding their family's TYPE line.  Returns
    problem strings; an empty list means a scraper will accept the page.
    """
    problems: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing '# EOF' terminator")
    types: dict = {}
    seen_series = set()
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        if line == "# EOF":
            if i != len(lines) - 1:
                problems.append(f"{where}: '# EOF' before end of exposition")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append(f"{where}: malformed TYPE line")
                continue
            _, _, mname, mtype = parts
            if not _NAME_OK.match(mname):
                problems.append(f"{where}: bad metric name {mname!r}")
            if mtype not in ("counter", "gauge", "summary", "histogram",
                            "unknown", "info", "stateset", "gaugehistogram"):
                problems.append(f"{where}: unknown type {mtype!r}")
            if mname in types:
                problems.append(f"{where}: duplicate TYPE for {mname!r}")
            types[mname] = mtype
            continue
        if line.startswith("#"):
            if not (line.startswith("# HELP ") or line.startswith("# UNIT ")):
                problems.append(f"{where}: unknown comment {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            problems.append(f"{where}: unparseable sample {line!r}")
            continue
        name = m.group("name")
        family = name
        for suffix in ("_total", "_count", "_sum", "_created", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in types:
            problems.append(f"{where}: sample {name!r} has no TYPE metadata")
        elif types[family] == "counter" and not name.endswith(
                ("_total", "_created")):
            problems.append(
                f"{where}: counter sample {name!r} must use '_total'")
        labels = m.group("labels")
        canon = []
        if labels is not None:
            pairs = _split_labels(labels)
            if pairs is None:
                problems.append(f"{where}: unbalanced quotes in labels")
                continue
            for pair in pairs:
                pm = _LABEL_PAIR_RE.match(pair)
                if not pm:
                    problems.append(f"{where}: bad label pair {pair!r}")
                    continue
                if not _LABEL_OK.match(pm.group("key")):
                    problems.append(
                        f"{where}: bad label name {pm.group('key')!r}")
                canon.append((pm.group("key"), pm.group("val")))
        series = (name, tuple(sorted(canon)))
        if series in seen_series:
            problems.append(f"{where}: duplicate series {line!r}")
        seen_series.add(series)
    return problems


# ----------------------------------------------------------------------
# scrape endpoint
# ----------------------------------------------------------------------
class MetricsServer:
    """Background ``/metrics`` + ``/healthz`` endpoint over the registry.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` after
    :meth:`start`).  The server thread is a daemon, so a crashed run never
    hangs on it; :meth:`stop` shuts it down deterministically.  Usable as
    a context manager::

        with MetricsServer(port=0) as srv:
            run_workload()
            text = urllib.request.urlopen(srv.url + "/metrics").read()

    ``resolve`` mounts extra GET routes: a callable taking the request path
    and returning ``(status, content_type, body_bytes)``, or ``None`` to
    fall through to 404.  The serve daemon mounts ``/jobs``, ``/tensors``
    and per-job trace download this way, so one HTTP port covers scraping
    and introspection.  ``health`` (zero-arg, returning a JSON-able dict)
    augments the ``/healthz`` payload.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry: Optional[metrics.MetricsRegistry] = None,
                 resolve=None, health=None) -> None:
        self.host = host
        self.port = port
        self.registry = registry or metrics.get_registry()
        self.resolve = resolve
        self.health = health
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence request logs
                pass

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                status = 200
                if path == "/metrics":
                    body = render_openmetrics(server.registry).encode()
                    ctype = CONTENT_TYPE
                elif path == "/healthz":
                    payload = {
                        "status": "ok",
                        "uptime_s": time.monotonic() - server._started_at,
                    }
                    if server.health is not None:
                        try:
                            payload.update(server.health())
                        except Exception as exc:  # health must never 500
                            payload["health_error"] = str(exc)
                    body = json.dumps(payload).encode()
                    ctype = "application/json"
                else:
                    extra = None
                    if server.resolve is not None:
                        try:
                            extra = server.resolve(path)
                        except Exception as exc:
                            extra = (500, "text/plain",
                                     f"route error: {exc}\n".encode())
                    if extra is None:
                        status, ctype, body = 404, "text/plain", b"not found\n"
                    else:
                        status, ctype, body = extra
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._started_at = time.monotonic()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-metrics-server",
                                        daemon=True)
        self._thread.start()
        metrics.inc("export.servers_started")
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
