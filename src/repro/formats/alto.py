"""ALTO: adaptive linearized storage of sparse tensors.

Where HiCOO imposes a uniform block grid (and wins only when blocks are
dense enough — the alpha_b/c_b regime of the paper's analysis), ALTO
(arXiv:2102.10245) stores each nonzero as a single linearized key whose bits
are allocated *adaptively*: mode ``m`` contributes exactly
``bits_for(shape[m] - 1)`` bits, assigned round-robin from the LSB so that
short modes drop out of the rotation once exhausted.  There is no grid to be
sparse in — compression is ``sum(widths)`` bits per nonzero regardless of how
skewed or hyper-sparse the tensor is — and the 1-D key space partitions into
equal-nnz contiguous chunks for perfect load balance.

Conversion shares the memoized one-sort pipeline of
:class:`~repro.core.convert.MortonContext`: for uniform widths the ALTO
layout *is* the Morton layout (bit ``b`` of mode ``m`` sits at ``b*N + m``
in both), so a cached Morton sort is reused verbatim; mixed widths pay one
:func:`~repro.util.bitops.alto_encode` plus one stable sort.  Delinearized
coordinates and per-mode traversal views are memoized on the tensor, the
same contract as HiCOO's ``task_gather`` cache.

MTTKRP runs over *output-space* views: for target mode ``m`` the nonzeros
are ordered by their mode-``m`` row with ties broken by **original COO
position**.  That makes every per-row accumulation a left-to-right sum in
source order — exactly the order the COO oracle's scatter backends
(``add_at``, ``bincount``, ``sort_reduceat``, and the sequential compiled
loop) use — so the ALTO kernel is *bit-identical* to the sequential COO
baseline on every backend that preserves per-task ordering (sim, thread,
process, numba).  Row segments are disjoint between tasks, so the existing
lock-free shared-output machinery runs unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..kernels.gather import TaskGather, mttkrp_gather_chunk
from ..obs import metrics, trace
from ..parallel.partition import balanced_ranges
from ..util.bitops import alto_decode, alto_encode, alto_widths, bits_for
from ..util.bitops import stable_argsort_u64
from ..util.validation import check_factors, check_mode
from .base import SparseTensorFormat
from .coo import CooTensor

__all__ = ["AltoContext", "AltoPartition", "AltoTensor"]


class AltoContext:
    """One adaptive linearization (encode + stable sort) of a COO tensor.

    Mirrors :class:`~repro.core.convert.MortonContext` and is memoized the
    same way (under ``"alto"`` in the tensor's construction cache, via
    :meth:`repro.formats.coo.CooTensor.alto_context`).  When the per-mode
    widths are uniform the two layouts coincide and a provided Morton
    context's sort is reused outright — conversion to *both* formats then
    costs a single sort.

    Attributes
    ----------
    widths : per-mode bit widths (``alto_widths(shape)``).
    codes : (W, nnz) uint64 linearized keys in sorted (ALTO) order.
    order : original COO position of each sorted nonzero — retained because
        the kernels use it to break row ties in source order (the
        bit-identity contract with the COO oracle).
    values : nonzero values in ALTO order.
    """

    def __init__(self, coo, morton=None):
        indices = np.asarray(coo.indices)
        if indices.ndim != 2:
            raise ValueError(
                f"indices must be 2-D (nnz, nmodes), got shape {indices.shape}")
        self.shape = tuple(coo.shape)
        self.nmodes = indices.shape[1]
        self.nnz = len(indices)
        self.widths = alto_widths(self.shape)
        self.total_bits = int(sum(self.widths))
        nwords = (self.total_bits + 63) // 64
        if self.nnz == 0:
            self.order = np.empty(0, dtype=np.int64)
            self.codes = np.zeros((nwords, 0), dtype=np.uint64)
            self.values = np.asarray(coo.values, dtype=np.float64)
        elif morton is not None and len(set(self.widths)) == 1:
            # uniform widths: bit b of mode m sits at b*N + m under both
            # layouts, and the narrower Morton code is the ALTO code
            # zero-extended — same key values, so the memoized stable sort
            # is the ALTO order already.
            self.order = morton.order
            pad = nwords - len(morton.codes)
            if pad > 0:
                self.codes = np.concatenate(
                    [np.zeros((pad, self.nnz), dtype=np.uint64), morton.codes])
            else:
                self.codes = morton.codes
            self.values = morton.values
            metrics.inc("convert.alto_shared_sorts")
        else:
            with trace.span("convert.alto_encode", nnz=self.nnz,
                            total_bits=self.total_bits):
                words = alto_encode(indices.T, self.widths)
            with trace.span("convert.alto_sort", nnz=self.nnz,
                            words=len(words)):
                if len(words) == 1:
                    order = stable_argsort_u64(words[0])
                else:
                    order = np.lexsort(words[::-1])
            self.order = order
            self.codes = np.ascontiguousarray(words[:, order])
            self.values = np.asarray(coo.values, dtype=np.float64)[order]
        metrics.inc("convert.alto_context_nnz", self.nnz)

    def nbytes(self) -> int:
        return int(self.codes.nbytes + self.order.nbytes + self.values.nbytes)


@dataclass(frozen=True)
class AltoPartition:
    """Equal-nnz split of one mode's output-space traversal.

    ``ranges`` are contiguous half-open nnz ranges into the mode view, cut
    only at row-segment boundaries — tasks therefore own disjoint output
    rows and may share the output array without locks or atomics.
    """

    mode: int
    nthreads: int
    ranges: Tuple[Tuple[int, int], ...]
    thread_nnz: np.ndarray

    def nbytes(self) -> int:
        return int(self.thread_nnz.nbytes)


class _AltoProcView:
    """Duck-typed HiCOO stand-in handing one ALTO mode view to the process
    backend.

    The shared-memory session shares ``bptr``/``binds``/``einds``/``values``
    and workers rebuild ``ginds = (binds[blk] << block_bits) + einds``; with
    one "block" per output-row segment, all-zero ``binds`` and
    ``block_bits = 0`` that reconstruction returns the mode-sorted global
    coordinates exactly, so the unchanged worker kernel — and the
    supervisor's reset-and-retry idempotence, which zeroes the rows a task's
    ``ginds`` names — applies verbatim.
    """

    def __init__(self, shape, seg_starts, ginds, values):
        nnz = len(values)
        self.shape = tuple(shape)
        self.block_bits = 0
        self.bptr = np.concatenate([seg_starts, [nnz]]).astype(np.int64)
        self.binds = np.zeros((len(seg_starts), ginds.shape[1]),
                              dtype=np.int64)
        self.einds = ginds
        self.values = values

    @property
    def nsegments(self) -> int:
        return len(self.bptr) - 1


class AltoTensor(SparseTensorFormat):
    """Sparse tensor stored as adaptively linearized (ALTO) keys.

    Parameters
    ----------
    coo : source tensor (any format exposing ``to_coo``).  Conversion goes
        through the memoized :meth:`CooTensor.alto_context`, so repeated
        constructions — and a HiCOO conversion of the same tensor when the
        bit widths are uniform — share one encode + sort.
    """

    format_name = "alto"

    def __init__(self, coo):
        if not isinstance(coo, CooTensor):
            coo = coo.to_coo()
        ctx = coo.alto_context()
        self._shape = ctx.shape
        self.widths = ctx.widths
        self.total_bits = ctx.total_bits
        #: (W, nnz) uint64 linearized keys, sorted — the format's storage
        self.keys = ctx.codes
        #: nonzero values in key order
        self.values = ctx.values
        #: original COO position of each nonzero (row-tie ordering contract)
        self.source_order = ctx.order
        self._mode_views: Dict[int, TaskGather] = {}
        self._segments: Dict[int, np.ndarray] = {}
        self._partitions: Dict[Tuple[int, int], AltoPartition] = {}
        self._proc_views: Dict[int, _AltoProcView] = {}

    # ------------------------------------------------------------------
    # format interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.values)

    @classmethod
    def from_parts(cls, shape, keys, values, source_order) -> "AltoTensor":
        """Assemble an ALTO tensor from prebuilt sorted keys (the
        direct-converter entry point — no COO materialization, no
        AltoContext).

        The caller owns the layout invariants: ``keys`` is the (W, nnz)
        uint64 msb-first key array in sorted order, ``source_order`` the
        source-iteration position of each sorted nonzero (the row-tie
        ordering contract of :meth:`mode_view`).
        """
        out = cls.__new__(cls)
        out._shape = tuple(shape)
        out.widths = alto_widths(out._shape)
        out.total_bits = int(sum(out.widths))
        out.keys = keys
        out.values = values
        out.source_order = source_order
        out._mode_views = {}
        out._segments = {}
        out._partitions = {}
        out._proc_views = {}
        return out

    def to_coo(self) -> CooTensor:
        # the generic level-driven iterator copies the memoized
        # delinearization into a fresh array — unlike handing the cached
        # ginds to the CooTensor, the result is safe to mutate
        from .levels import iterate_coords

        inds, values = iterate_coords(self)
        return CooTensor(self._shape, inds, values, sum_duplicates=False)

    def storage_bytes(self) -> dict:
        """ALTO storage: one ``ceil(sum(widths)/64)``-word key (8 bytes per
        word) plus beta_float = 4 bytes per value, matching the COO/HiCOO
        accounting convention."""
        return {
            "keys": 8 * len(self.keys) * self.nnz,
            "values": 4 * self.nnz,
        }

    # ------------------------------------------------------------------
    # delinearization (memoized, the per-tensor "masks" of the paper)
    # ------------------------------------------------------------------
    def delinearized(self) -> np.ndarray:
        """(nnz, N) int64 global coordinates decoded from the keys.

        Computed once per tensor with the cached per-mode position masks
        (:func:`~repro.util.bitops.alto_positions`); callers must treat the
        array as read-only.
        """
        ginds = self.__dict__.get("_ginds")
        if ginds is None:
            metrics.inc("alto.decode_builds")
            with trace.span("alto.delinearize", nnz=self.nnz):
                coords = alto_decode(self.keys, self.widths)
                ginds = np.empty((self.nnz, self.nmodes), dtype=np.int64)
                for m in range(self.nmodes):
                    # extents fit in int64: a free same-width view, no astype
                    ginds[:, m] = coords[m].view(np.int64)
            self.__dict__["_ginds"] = ginds
        return ginds

    # ------------------------------------------------------------------
    # traversal views
    # ------------------------------------------------------------------
    def mode_view(self, mode: int) -> TaskGather:
        """Output-space traversal for ``mode``: one :class:`TaskGather` with
        nonzeros ordered by target row, ties in original COO order.

        The tie order is what makes every backend bit-identical to the COO
        oracle: each output row is accumulated left-to-right in source
        order, exactly as ``add_at``/``bincount``/``sort_reduceat`` do on
        the unsorted COO input.  Memoized per mode.
        """
        mode = check_mode(mode, self.nmodes)
        tg = self._mode_views.get(mode)
        if tg is None:
            metrics.inc("alto.view_builds")
            with trace.span("alto.mode_view", mode=mode, nnz=self.nnz):
                ginds = self.delinearized()
                perm = self._mode_order(mode)
                g = np.ascontiguousarray(ginds[perm])
                v = np.ascontiguousarray(self.values[perm])
                sorted_modes = np.array(
                    [bool(np.all(g[1:, m] >= g[:-1, m]))
                     for m in range(self.nmodes)], dtype=bool)
                tg = TaskGather(runs=((0, self.nnz),), ginds=g, values=v,
                                sorted_modes=sorted_modes)
            self._mode_views[mode] = tg
        else:
            metrics.inc("alto.view_hits")
        return tg

    def _mode_order(self, mode: int) -> np.ndarray:
        """Permutation of the ALTO order by (target row, original COO pos)."""
        if self.nnz == 0:
            return np.empty(0, dtype=np.int64)
        rows = self.delinearized()[:, mode]
        pos = self.source_order
        row_bits = bits_for(self._shape[mode] - 1)
        pos_bits = bits_for(self.nnz - 1)
        if row_bits + pos_bits <= 64:
            # distinct packed keys: the unstable default sort is exact
            key = rows.view(np.uint64) << np.uint64(pos_bits)
            key |= pos.view(np.uint64)
            return np.argsort(key)
        return np.lexsort((pos, rows))

    def linear_view(self) -> TaskGather:
        """Input-space traversal in plain key (ALTO) order — the privatized
        strategy splits this into equal-nnz chunks."""
        tg = self.__dict__.get("_linear_tg")
        if tg is None:
            metrics.inc("alto.view_builds")
            ginds = self.delinearized()
            sorted_modes = np.array(
                [bool(np.all(ginds[1:, m] >= ginds[:-1, m]))
                 for m in range(self.nmodes)], dtype=bool)
            tg = TaskGather(runs=((0, self.nnz),), ginds=ginds,
                            values=self.values, sorted_modes=sorted_modes)
            self.__dict__["_linear_tg"] = tg
        else:
            metrics.inc("alto.view_hits")
        return tg

    def row_segments(self, mode: int) -> np.ndarray:
        """Start offsets of the distinct-output-row segments of
        :meth:`mode_view` (int64, first element 0 when nonempty)."""
        mode = check_mode(mode, self.nmodes)
        starts = self._segments.get(mode)
        if starts is None:
            if self.nnz == 0:
                starts = np.empty(0, dtype=np.int64)
            else:
                rows = self.mode_view(mode).ginds[:, mode]
                starts = np.concatenate(
                    [[0], np.flatnonzero(rows[1:] != rows[:-1]) + 1]
                ).astype(np.int64)
            self._segments[mode] = starts
        return starts

    # ------------------------------------------------------------------
    # load-balanced partitioning
    # ------------------------------------------------------------------
    def schedule(self, mode: int, nthreads: int) -> AltoPartition:
        """Equal-nnz split of the linearized output space into ``nthreads``
        row-disjoint contiguous ranges (memoized per (mode, nthreads)).

        Cuts land on row-segment boundaries, so concurrent tasks writing a
        shared output never touch the same row — the same lock-free
        invariant as the HiCOO superblock schedule, but balanced to within
        one row segment of ``nnz / nthreads`` regardless of skew.
        """
        mode = check_mode(mode, self.nmodes)
        if nthreads < 1:
            raise ValueError(f"nthreads must be positive, got {nthreads}")
        part = self._partitions.get((mode, nthreads))
        if part is None:
            starts = self.row_segments(mode)
            bounds = np.concatenate([starts, [self.nnz]]).astype(np.int64)
            weights = np.diff(bounds)
            ranges = tuple(
                (int(bounds[slo]), int(bounds[shi]))
                for slo, shi in balanced_ranges(weights, nthreads))
            thread_nnz = np.array([hi - lo for lo, hi in ranges],
                                  dtype=np.int64)
            part = AltoPartition(mode=mode, nthreads=nthreads, ranges=ranges,
                                 thread_nnz=thread_nnz)
            self._partitions[(mode, nthreads)] = part
        return part

    def proc_view(self, mode: int) -> _AltoProcView:
        """HiCOO-shaped stand-in for the shared-memory process backend
        (memoized per mode; released via ``procpool.release_shared``)."""
        mode = check_mode(mode, self.nmodes)
        view = self._proc_views.get(mode)
        if view is None:
            tg = self.mode_view(mode)
            view = _AltoProcView(self._shape, self.row_segments(mode),
                                 tg.ginds, tg.values)
            self._proc_views[mode] = view
        return view

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def mttkrp(self, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
        """Sequential MTTKRP over the linearized keys (bit-identical to the
        COO baseline; see :meth:`mode_view`)."""
        factors = check_factors(factors, self._shape)
        mode = check_mode(mode, self.nmodes)
        rank = factors[0].shape[1]
        out = np.zeros((self._shape[mode], rank))
        if self.nnz:
            mttkrp_gather_chunk(self.mode_view(mode), factors, mode, out,
                                scatter="seq")
        return out

    # ------------------------------------------------------------------
    # cache accounting
    # ------------------------------------------------------------------
    def cache_nbytes(self) -> int:
        """Footprint of the memoized delinearization/view/partition caches
        (the keys and values themselves are the format, not cache)."""
        total = 0
        ginds = self.__dict__.get("_ginds")
        if ginds is not None:
            total += ginds.nbytes
        linear = self.__dict__.get("_linear_tg")
        if linear is not None:
            total += linear.sorted_modes.nbytes  # ginds/values are shared
        for tg in self._mode_views.values():
            total += tg.nbytes()
        for starts in self._segments.values():
            total += starts.nbytes
        for part in self._partitions.values():
            total += part.nbytes()
        for view in self._proc_views.values():
            total += view.bptr.nbytes + view.binds.nbytes
        return int(total)

    def clear_cache(self) -> None:
        """Drop every memoized view (not the keys/values themselves).

        Do not clear while a process-backend session is live — release the
        shared segments first (``procpool.release_shared(tensor)``).
        """
        self.__dict__.pop("_ginds", None)
        self.__dict__.pop("_linear_tg", None)
        self._mode_views.clear()
        self._segments.clear()
        self._partitions.clear()
        self._proc_views.clear()
