"""CSF (Compressed Sparse Fiber) tensor — the SPLATT baseline format.

CSF generalizes CSR to tensors: nonzeros are sorted lexicographically by a
chosen mode order and stored as a tree whose depth-``d`` nodes are the unique
index prefixes of length ``d+1``.  Each level stores the node ids (``fids``)
and a pointer array (``fptr``) delimiting each node's children, so shared
prefixes are stored once.

CSF is the strongest competitor HiCOO is evaluated against: it compresses
well and has fast tree-walk MTTKRP, but a single tree privileges its root
mode — mode-generic use needs one tree per mode (``CSF-N``), multiplying the
storage.  Both accountings are exposed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..kernels.gather import scatter_add
from ..util.validation import check_factors, check_mode
from .base import SparseTensorFormat
from .coo import CooTensor

__all__ = ["CsfTensor", "CsfLevel"]


@dataclass
class CsfLevel:
    """One level of the fiber tree.

    Attributes
    ----------
    fids : node ids — the tensor index of this level's mode for every node.
    parent : index of each node's parent in the previous level (empty at the
        root level).
    fptr : child ranges into the next level; ``None`` at the leaf level.
    """

    fids: np.ndarray
    parent: np.ndarray
    fptr: Optional[np.ndarray]

    @property
    def nnodes(self) -> int:
        return len(self.fids)


class CsfTensor(SparseTensorFormat):
    """Sparse tensor in compressed-sparse-fiber format.

    Parameters
    ----------
    coo : source tensor in coordinate format.
    mode_order : permutation of modes; ``mode_order[0]`` is the tree root.
        ``None`` selects the SPLATT default — modes sorted by increasing
        dimension size, which maximizes prefix sharing near the root.
    """

    format_name = "csf"

    def __init__(self, coo: CooTensor, mode_order: Optional[Sequence[int]] = None):
        if not isinstance(coo, CooTensor):
            raise TypeError(f"expected a CooTensor, got {type(coo).__name__}")
        nmodes = coo.nmodes
        if mode_order is None:
            mode_order = list(np.argsort(coo.shape, kind="stable"))
        mode_order = [check_mode(m, nmodes) for m in mode_order]
        if sorted(mode_order) != list(range(nmodes)):
            raise ValueError(f"mode_order must be a permutation, got {mode_order}")

        self._shape = coo.shape
        self.mode_order = tuple(mode_order)
        # sort_lexicographic memoizes its permutation per mode order on the
        # source tensor, so a CSF-N suite building one tree per root mode
        # pays for each distinct ordering once
        sorted_coo = coo.sort_lexicographic(mode_order)
        self.values = sorted_coo.values
        self.levels = _build_levels(sorted_coo.indices, mode_order)

    @classmethod
    def from_parts(cls, shape, mode_order, levels, values) -> "CsfTensor":
        """Assemble a CSF tensor from prebuilt levels (the direct-converter
        entry point — no COO materialization, no re-sort).

        ``levels`` must be the output of :func:`_build_levels` on
        coordinates lex-sorted by ``mode_order``; the caller owns that
        invariant.
        """
        out = cls.__new__(cls)
        out._shape = tuple(shape)
        out.mode_order = tuple(int(m) for m in mode_order)
        out.levels = levels
        out.values = values
        return out

    @staticmethod
    def default_mode_order(shape) -> tuple:
        """The SPLATT default the constructor applies for ``None``: modes
        by increasing dimension size (stable)."""
        return tuple(int(m) for m in np.argsort(shape, kind="stable"))

    # ------------------------------------------------------------------
    # format interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.values)

    def to_coo(self) -> CooTensor:
        # the generic level-driven iterator walks the fiber tree bottom-up
        # (leaf fids expanded per nonzero, parent-pointer ascent per level)
        from .levels import iterate_coords

        inds, values = iterate_coords(self)
        return CooTensor(self._shape, inds, values, sum_duplicates=False)

    def storage_bytes(self, ntrees: int = 1) -> dict:
        """Canonical CSF storage (beta_long = 8-byte pointers, beta_int =
        4-byte fids, 4-byte values).  ``ntrees > 1`` models CSF-N storage by
        scaling the index structures (values are shared)."""
        if ntrees < 1:
            raise ValueError("ntrees must be >= 1")
        fids = sum(level.nnodes for level in self.levels)
        fptr = sum(level.nnodes + 1 for level in self.levels if level.fptr is not None)
        return {
            "fids": 4 * fids * ntrees,
            "fptr": 8 * fptr * ntrees,
            "values": 4 * self.nnz,
        }

    # ------------------------------------------------------------------
    # MTTKRP
    # ------------------------------------------------------------------
    def mttkrp(self, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
        """Tree-walk MTTKRP for an arbitrary target mode.

        Two passes over the tree:

        * *below* (bottom-up): for every node, the R-vector obtained by
          contracting its whole subtree — values times the factor rows of all
          modes deeper than the node.
        * *above* (top-down): the Hadamard product of the factor rows along
          the node's root path, excluding the node's own level.

        The output row of every node at the target level is then
        ``above * below`` summed over nodes sharing a fid — this reproduces
        SPLATT's root/internal/leaf kernels as one algorithm.
        """
        factors = check_factors(factors, self._shape)
        mode = check_mode(mode, self.nmodes)
        rank = factors[0].shape[1]
        out = np.zeros((self._shape[mode], rank))
        if self.nnz == 0:
            return out

        depth_of_mode = self.mode_order.index(mode)
        nmodes = self.nmodes

        # --- bottom-up pass: below[d] for d = target depth only is needed,
        # but intermediate levels between leaf and target must be built.
        below = self.values[:, None]  # leaf "below" = the value itself
        for depth in range(nmodes - 1, depth_of_mode, -1):
            level = self.levels[depth]
            factor = factors[self.mode_order[depth]]
            contrib = below * factor[level.fids]
            parent_n = self.levels[depth - 1].nnodes
            agg = np.zeros((parent_n, rank))
            # nodes are stored parent-major, so parent ids are sorted
            scatter_add(agg, level.parent, contrib, presorted=True)
            below = agg

        # --- top-down pass: above[d] down to the target depth.
        above = np.ones((self.levels[0].nnodes, rank))
        for depth in range(1, depth_of_mode + 1):
            level = self.levels[depth]
            prev = self.levels[depth - 1]
            factor = factors[self.mode_order[depth - 1]]
            above = above[level.parent] * factor[prev.fids[level.parent]]

        target = self.levels[depth_of_mode]
        scatter_add(out, target.fids, above * below,
                    presorted=depth_of_mode == 0)
        return out

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def fiber_counts(self) -> List[int]:
        """Number of nodes per level (root first)."""
        return [level.nnodes for level in self.levels]

    def compression_ratio(self) -> float:
        """COO index storage / CSF index storage (indices only)."""
        coo_idx = 4 * self.nmodes * self.nnz
        csf = self.storage_bytes()
        csf_idx = csf["fids"] + csf["fptr"]
        return coo_idx / csf_idx if csf_idx else float("inf")


def _build_levels(sorted_indices: np.ndarray, mode_order: Sequence[int]) -> List[CsfLevel]:
    """Build the fiber-tree levels from lexicographically sorted coordinates."""
    nnz, nmodes = sorted_indices.shape
    cols = [sorted_indices[:, m] for m in mode_order]

    # new_node[d][i] == True if row i starts a new depth-d node
    new_node = np.zeros((nmodes, nnz), dtype=bool)
    if nnz:
        new_node[:, 0] = True
        changed = np.zeros(nnz - 1, dtype=bool)
        for d in range(nmodes):
            changed |= cols[d][1:] != cols[d][:-1]
            new_node[d, 1:] = changed

    levels: List[CsfLevel] = []
    node_id_prev = np.zeros(0, dtype=np.int64)
    for d in range(nmodes):
        starts = np.flatnonzero(new_node[d])
        fids = cols[d][starts].astype(np.int64)
        if d == 0:
            parent = np.empty(0, dtype=np.int64)
        else:
            # each node's parent is the depth-(d-1) node covering its start row
            parent = node_id_prev[starts]
        levels.append(CsfLevel(fids=fids, parent=parent, fptr=None))
        node_id = np.cumsum(new_node[d]) - 1 if nnz else np.zeros(0, dtype=np.int64)
        if d > 0:
            counts = np.bincount(parent, minlength=levels[d - 1].nnodes)
            levels[d - 1].fptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        node_id_prev = node_id
    return levels
