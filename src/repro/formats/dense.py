"""Dense tensor wrapper providing *reference* semantics.

Every sparse kernel in this library is validated against the dense
implementations here, which are written for clarity (straight unfoldings and
explicit Khatri-Rao products), not speed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..util.validation import check_factors, check_mode
from .base import SparseTensorFormat

__all__ = ["DenseTensor"]


class DenseTensor(SparseTensorFormat):
    """A dense ndarray presented through the sparse-format interface."""

    format_name = "dense"

    def __init__(self, array: np.ndarray):
        self.array = np.asarray(array, dtype=np.float64)
        if self.array.ndim == 0:
            raise ValueError("dense tensor must have at least one mode")

    @property
    def shape(self) -> tuple:
        return self.array.shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.array))

    def to_coo(self):
        from .coo import CooTensor

        return CooTensor.from_dense(self.array)

    def storage_bytes(self) -> dict:
        return {"values": int(self.array.nbytes)}

    # ------------------------------------------------------------------
    # reference kernels
    # ------------------------------------------------------------------
    def unfold(self, mode: int) -> np.ndarray:
        """Mode-n matricization with the Kolda-Bader column ordering."""
        mode = check_mode(mode, self.array.ndim)
        return np.moveaxis(self.array, mode, 0).reshape(self.array.shape[mode], -1)

    def mttkrp(self, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
        factors = check_factors(factors, self.shape)
        mode = check_mode(mode, self.array.ndim)
        others = [factors[m] for m in range(self.array.ndim) if m != mode]
        if not others:
            # degenerate 1-mode tensor: the Khatri-Rao over an empty set is
            # the 1 x R all-ones matrix
            return np.repeat(self.unfold(mode), factors[mode].shape[1], axis=1)
        # ``unfold`` uses a C-order reshape, so among the remaining modes the
        # last one varies fastest; ``khatri_rao`` below makes *later* matrices
        # vary fastest, so the natural mode order lines the two up.
        kr = khatri_rao(others)
        return self.unfold(mode) @ kr

    def ttv(self, vector: np.ndarray, mode: int) -> "DenseTensor":
        mode = check_mode(mode, self.array.ndim)
        vector = np.asarray(vector, dtype=np.float64)
        return DenseTensor(np.tensordot(self.array, vector, axes=(mode, 0)))

    def norm(self) -> float:
        return float(np.linalg.norm(self.array))


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise Kronecker (Khatri-Rao) product of a list of matrices."""
    matrices = [np.asarray(m, dtype=np.float64) for m in matrices]
    if not matrices:
        raise ValueError("need at least one matrix")
    rank = matrices[0].shape[1]
    if any(m.shape[1] != rank for m in matrices):
        raise ValueError("all matrices must have the same number of columns")
    out = matrices[0]
    for m in matrices[1:]:
        out = (out[:, None, :] * m[None, :, :]).reshape(-1, rank)
    return out
