"""Sparse tensor storage formats (COO, CSF, HiCOO, ALTO).

Imports stay lazy inside :func:`as_format` so importing the package does not
drag in the kernel layer (HiCOO lives in :mod:`repro.core.hicoo` for
historical reasons but is addressable here by name like the rest).
"""

from __future__ import annotations

__all__ = ["FORMAT_NAMES", "as_format"]

#: every first-class format, in presentation order
FORMAT_NAMES = ("coo", "csf", "hicoo", "alto")


def as_format(tensor, name: str, *, block_bits: int = None,
              mode_order=None):
    """Convert ``tensor`` (any format) to the format called ``name``.

    ``block_bits`` applies to ``"hicoo"`` (default: the constructor's own),
    ``mode_order`` to ``"csf"``.  Conversion is routed through the direct
    converter registry of :mod:`repro.core.converters` — registered pairs
    skip the COO round-trip entirely; unregistered pairs fall back to it
    (and tick ``convert.fallbacks``).  A tensor already in the requested
    format is returned unchanged when no constructor arguments are given.
    """
    from ..core.converters import convert

    return convert(tensor, name, block_bits=block_bits,
                   mode_order=mode_order)
