"""Sparse tensor storage formats (COO, CSF, HiCOO, ALTO).

Imports stay lazy inside :func:`as_format` so importing the package does not
drag in the kernel layer (HiCOO lives in :mod:`repro.core.hicoo` for
historical reasons but is addressable here by name like the rest).
"""

from __future__ import annotations

__all__ = ["FORMAT_NAMES", "as_format"]

#: every first-class format, in presentation order
FORMAT_NAMES = ("coo", "csf", "hicoo", "alto")


def as_format(tensor, name: str, *, block_bits: int = None,
              mode_order=None):
    """Convert ``tensor`` (any format) to the format called ``name``.

    ``block_bits`` applies to ``"hicoo"`` (default: the constructor's own),
    ``mode_order`` to ``"csf"``.  Conversion goes through COO; a tensor
    already in the requested format is returned unchanged when no
    constructor arguments are given.
    """
    name = str(name).lower()
    if name not in FORMAT_NAMES:
        raise ValueError(
            f"unknown format {name!r}; expected one of {FORMAT_NAMES}")
    if tensor.format_name == name and block_bits is None and mode_order is None:
        return tensor
    coo = tensor.to_coo()
    if name == "coo":
        return coo
    if name == "csf":
        from .csf import CsfTensor

        return CsfTensor(coo, mode_order=mode_order)
    if name == "hicoo":
        from ..core.hicoo import HicooTensor

        if block_bits is None:
            return HicooTensor(coo)
        return HicooTensor(coo, block_bits=block_bits)
    from .alto import AltoTensor

    return AltoTensor(coo)
