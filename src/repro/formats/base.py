"""Abstract interface shared by every sparse-tensor storage format.

The paper compares three formats — COO, CSF and HiCOO — on the same set of
operations.  This module pins down that common surface so the CP-ALS driver
and the benchmark harness are format-generic.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

__all__ = ["SparseTensorFormat"]


class SparseTensorFormat(abc.ABC):
    """A sparse tensor stored in some concrete format.

    Concrete classes must expose the tensor's logical ``shape`` and ``nnz``
    and implement MTTKRP — the single tensor-touching kernel of CP-ALS — plus
    conversions back to coordinate form for validation.
    """

    #: short lowercase identifier used in benchmark tables ("coo", "csf", ...)
    format_name: str = "abstract"

    @property
    @abc.abstractmethod
    def shape(self) -> tuple:
        """Logical dimensions of the tensor."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored nonzeros."""

    @property
    def nmodes(self) -> int:
        return len(self.shape)

    @abc.abstractmethod
    def mttkrp(self, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
        """Matricized-tensor-times-Khatri-Rao-product along ``mode``.

        Computes ``M = X_(mode) · (U^(N) ⊙ … ⊙ U^(mode+1) ⊙ U^(mode-1) ⊙ … ⊙ U^(1))``
        without materializing the Khatri-Rao product.  ``factors[mode]`` is
        ignored (only its row count/rank are used for the output shape).

        Returns an ``(shape[mode], R)`` dense matrix.
        """

    @abc.abstractmethod
    def to_coo(self):
        """Convert back to :class:`repro.formats.coo.CooTensor`."""

    @abc.abstractmethod
    def storage_bytes(self) -> dict:
        """Exact byte accounting, keyed by component (e.g. ``indices``,
        ``values``, ``pointers``).  ``sum(d.values())`` is the format total."""

    # ------------------------------------------------------------------
    # conveniences shared by all formats
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        return int(sum(self.storage_bytes().values()))

    def bytes_per_nnz(self) -> float:
        return self.total_bytes() / max(1, self.nnz)

    def density(self) -> float:
        size = float(np.prod([float(s) for s in self.shape]))
        return self.nnz / size if size else 0.0

    def norm(self) -> float:
        """Frobenius norm; default goes through COO."""
        return self.to_coo().norm()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(s) for s in self.shape)
        return f"<{type(self).__name__} {dims} nnz={self.nnz}>"
