"""CSF-N: the mode-generic deployment of CSF trees.

A single CSF tree privileges its root mode: MTTKRP is cheapest when the
target mode sits near the root (the two tree passes touch fewer levels).
SPLATT therefore keeps up to N trees and serves each mode from the best
one — the storage/time trade HiCOO's single mode-generic structure is
evaluated against.  This module implements that deployment:

* :class:`CsfSuite` — K trees (1 <= K <= N) with an assignment of every
  mode to the tree serving it;
* the SPLATT allocation heuristic: tree k roots the k-th smallest mode,
  and each mode is served by the tree where it sits shallowest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..util.validation import check_factors, check_mode
from .base import SparseTensorFormat
from .coo import CooTensor
from .csf import CsfTensor

__all__ = ["CsfSuite"]


class CsfSuite(SparseTensorFormat):
    """A set of CSF trees jointly serving all MTTKRP modes.

    Parameters
    ----------
    coo : source tensor.
    ntrees : number of trees K (default: one per mode — full CSF-N).
        ``K = 1`` degenerates to a single shared tree.
    """

    format_name = "csf-suite"

    def __init__(self, coo: CooTensor, ntrees: Optional[int] = None):
        if not isinstance(coo, CooTensor):
            raise TypeError(f"expected a CooTensor, got {type(coo).__name__}")
        nmodes = coo.nmodes
        if ntrees is None:
            ntrees = nmodes
        if not 1 <= ntrees <= nmodes:
            raise ValueError(
                f"ntrees must be in [1, {nmodes}], got {ntrees}")
        self._shape = coo.shape

        # SPLATT-style allocation: sort modes by size; tree k is rooted at
        # the k-th smallest mode, remaining modes ordered small-to-large.
        by_size = list(np.argsort(coo.shape, kind="stable"))
        self.trees: List[CsfTensor] = []
        for k in range(ntrees):
            root = by_size[k]
            rest = [m for m in by_size if m != root]
            self.trees.append(CsfTensor(coo, mode_order=[root] + rest))

        # each mode served by the tree where it appears shallowest
        self.mode_tree: Dict[int, int] = {}
        for mode in range(nmodes):
            depths = [t.mode_order.index(mode) for t in self.trees]
            self.mode_tree[mode] = int(np.argmin(depths))

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self._shape

    @property
    def nnz(self) -> int:
        return self.trees[0].nnz

    @property
    def ntrees(self) -> int:
        return len(self.trees)

    def tree_for(self, mode: int) -> CsfTensor:
        """The tree assigned to serve mode ``mode``."""
        mode = check_mode(mode, self.nmodes)
        return self.trees[self.mode_tree[mode]]

    def depth_of(self, mode: int) -> int:
        """Tree depth at which ``mode`` sits in its serving tree (0=root —
        cheaper MTTKRP)."""
        mode = check_mode(mode, self.nmodes)
        return self.tree_for(mode).mode_order.index(mode)

    def mttkrp(self, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
        factors = check_factors(factors, self._shape)
        mode = check_mode(mode, self.nmodes)
        return self.tree_for(mode).mttkrp(factors, mode)

    def to_coo(self) -> CooTensor:
        return self.trees[0].to_coo()

    def storage_bytes(self) -> dict:
        """Index structures of every tree; values stored once (shared)."""
        out: dict = {"values": 4 * self.nnz}
        for k, tree in enumerate(self.trees):
            parts = tree.storage_bytes(ntrees=1)
            out[f"tree{k}_fids"] = parts["fids"]
            out[f"tree{k}_fptr"] = parts["fptr"]
        return out

    def total_depth_cost(self) -> int:
        """Sum over modes of the serving depth — the allocation quality
        metric the heuristic minimizes (lower = cheaper MTTKRPs)."""
        return sum(self.depth_of(m) for m in range(self.nmodes))
