"""Coordinate-hierarchy level descriptions (taco format abstraction).

The taco papers "Format Abstraction for Sparse Tensor Algebra Compilers"
(arXiv:1804.10112) and "Automatic Generation of Efficient Sparse Tensor
Format Conversion Routines" (arXiv:2001.02609) describe a sparse format as
a *hierarchy of per-mode level types* — dense, compressed, singleton, and
friends — each carrying a small set of capability flags.  Iteration and
conversion then become properties of the level composition instead of
hand-written per-format code.

This module is that description layer for the four first-class formats:

========  ==========================================================
format    level composition
========  ==========================================================
coo       ``compressed(m0)`` + ``singleton(m)`` for the other modes
csf       ``compressed(m)`` per mode, in tree (``mode_order``) order
hicoo     ``blocked(m, b)`` per mode — a block-grid coordinate split:
          per-block 32-bit coordinates over Morton-ordered blocks plus
          byte offsets inside each block
alto      ``linearized(m, w)`` per mode — the mode's ``w`` bits
          scattered round-robin through one adaptively packed key
========  ==========================================================

Capability flags follow the format-abstraction paper:

* ``full``       — every coordinate in [0, dim) appears (dense levels);
* ``ordered``    — coordinates appear in sorted order at this level;
* ``unique``     — no coordinate repeats under one parent;
* ``branchless`` — the level stores no child pointers (position-aligned
  with its parent, like COO's singleton trail or HiCOO's offsets);
* ``compact``    — no padding between stored coordinates.

:func:`iterate_coords` is the generic level-driven iterator: it expands any
described tensor back to ``(nnz, N)`` global coordinates plus values in the
format's own storage order, replacing the hand-rolled ``to_coo`` walks that
each format used to carry.  The direct converters of
:mod:`repro.core.converters` are built on the same descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "CAPABILITIES",
    "LevelType",
    "FormatLevels",
    "describe",
    "iterate_coords",
    "level_signature",
]

#: flag names in presentation order (the paper's table-1 ordering)
CAPABILITIES = ("full", "ordered", "unique", "branchless", "compact")


@dataclass(frozen=True)
class LevelType:
    """One level of a format's coordinate hierarchy.

    ``kind`` is the level-type name; ``mode`` the tensor mode whose
    coordinates the level stores; ``meta`` carries per-level parameters
    (HiCOO's ``block_bits``, ALTO's per-mode key width) as sorted
    ``(key, value)`` pairs so instances stay hashable.
    """

    kind: str
    mode: int
    full: bool = False
    ordered: bool = False
    unique: bool = False
    branchless: bool = False
    compact: bool = True
    meta: Tuple[Tuple[str, object], ...] = ()

    def flags(self) -> str:
        """Compact capability string, e.g. ``"-OU-C"`` for an ordered,
        unique, compact level that is neither full nor branchless."""
        return "".join(
            letter.upper() if getattr(self, name) else "-"
            for name, letter in zip(CAPABILITIES, "foubc"))

    def describe(self) -> str:
        extra = ",".join(f"{k}={v}" for k, v in self.meta)
        return f"{self.kind}(m{self.mode}{',' + extra if extra else ''})"


@dataclass(frozen=True)
class FormatLevels:
    """A format instance described as its per-mode level hierarchy."""

    format_name: str
    levels: Tuple[LevelType, ...]

    def signature(self) -> str:
        """Human/CI-readable level composition, root level first."""
        return "·".join(lv.describe() for lv in self.levels)

    def flags_table(self) -> str:
        """One ``kind(mode)=FLAGS`` entry per level."""
        return " ".join(f"{lv.describe()}={lv.flags()}" for lv in self.levels)


def describe(tensor) -> FormatLevels:
    """Level description of a concrete format instance (duck-typed on the
    format's storage attributes, so no format module is imported here)."""
    name = tensor.format_name
    builder = _DESCRIBERS.get(name)
    if builder is None:
        raise ValueError(
            f"no level description for format {name!r}; known: "
            f"{sorted(_DESCRIBERS)}")
    return FormatLevels(format_name=name, levels=tuple(builder(tensor)))


def _describe_coo(tensor):
    # COO in level terms: a compressed root holding the first mode's
    # coordinates (duplicates allowed — one entry per nonzero), then a
    # branchless singleton trail for the remaining modes.  Ordering is not
    # part of the COO contract (permuted copies are legal), so `ordered`
    # stays off.
    yield LevelType("compressed", 0, unique=False, branchless=False)
    for m in range(1, tensor.nmodes):
        yield LevelType("singleton", m, branchless=True)


def _describe_csf(tensor):
    # CSF: every level is compressed, ordered and unique under its parent —
    # the fiber tree of the SPLATT baseline.  Levels appear in tree order.
    for m in tensor.mode_order:
        yield LevelType("compressed", int(m), ordered=True, unique=True)


def _describe_hicoo(tensor):
    # HiCOO: each mode's coordinates are split at the block grid — a
    # 32-bit per-block coordinate (Morton-ordered across blocks) plus a
    # byte offset per nonzero.  The offset side is branchless: einds is
    # position-aligned with the values, no pointer array.
    b = int(tensor.block_bits)
    for m in range(tensor.nmodes):
        yield LevelType("blocked", m, ordered=True, branchless=True,
                        meta=(("b", b),))


def _describe_alto(tensor):
    # ALTO: one linearized level per mode — the mode's adaptive bit width
    # scattered through a single sorted key, so every level is ordered in
    # key order and branchless (the key IS the position).
    for m in range(tensor.nmodes):
        yield LevelType("linearized", m, ordered=True, branchless=True,
                        meta=(("w", int(tensor.widths[m])),))


_DESCRIBERS: Dict[str, Callable] = {
    "coo": _describe_coo,
    "csf": _describe_csf,
    "hicoo": _describe_hicoo,
    "alto": _describe_alto,
}


def level_signature(tensor) -> str:
    """Shorthand for ``describe(tensor).signature()``."""
    return describe(tensor).signature()


# ----------------------------------------------------------------------
# generic level-driven iteration
# ----------------------------------------------------------------------
def iterate_coords(tensor):
    """Expand a described tensor to ``(indices, values)``.

    ``indices`` is a freshly allocated ``(nnz, N)`` int64 array of global
    coordinates and ``values`` the nonzero values, both in the format's own
    storage order (COO: as stored; CSF: lexicographic in ``mode_order``;
    HiCOO: Morton blocks, offset-lex inside; ALTO: key order).  The walk is
    driven by the level description: each level contributes its mode's
    column via the expander for its level kind, deepest level first so
    compressed levels can ascend their parent pointers.

    This is the single iteration routine behind every format's ``to_coo``
    and the assembly half of the direct converters.
    """
    desc = describe(tensor)
    nnz = int(tensor.nnz)
    indices = np.empty((nnz, tensor.nmodes), dtype=np.int64)
    values = np.asarray(tensor.values, dtype=np.float64)
    if nnz == 0:
        return indices, values
    state: dict = {"depth": len(desc.levels) - 1}
    for level in reversed(desc.levels):
        col = _EXPANDERS[level.kind](tensor, level, state)
        indices[:, level.mode] = col
        state["depth"] -= 1
    return indices, values


def _expand_singleton(tensor, level, state):
    # branchless coordinate trail: one stored coordinate per nonzero
    return tensor.indices[:, level.mode]


def _expand_compressed(tensor, level, state):
    levels = getattr(tensor, "levels", None)
    if levels is None:
        # COO's compressed root stores one coordinate per nonzero outright
        return tensor.indices[:, level.mode]
    # CSF: expand this depth's node ids down to the leaves, then ascend
    # the parent pointers for the next (shallower) level.
    depth = state["depth"]
    node = state.get("node")
    csf_level = levels[depth]
    if node is None:
        # leaf level: one node per nonzero, so the identity gather is free
        state["node"] = csf_level.parent if depth > 0 else None
        return csf_level.fids
    col = csf_level.fids[node]
    state["node"] = csf_level.parent[node] if depth > 0 else node
    return col


def _expand_blocked(tensor, level, state):
    # HiCOO: global coordinate = (block coordinate << b) + byte offset.
    coords = state.get("block_coords")
    if coords is None:
        gi = getattr(tensor, "global_indices", None)
        if gi is not None:
            # HicooTensor memoizes the full expansion in its gather cache
            coords = gi()
        else:
            # duck-typed stand-ins without the cache expand mode by mode
            block_of = np.repeat(np.arange(len(tensor.binds)),
                                 np.diff(tensor.bptr))
            b = dict(level.meta)["b"]
            base = tensor.binds.astype(np.int64) << b
            coords = base[block_of] + tensor.einds.astype(np.int64)
        state["block_coords"] = coords
    return coords[:, level.mode]


def _expand_linearized(tensor, level, state):
    # ALTO: delinearize the packed keys once (memoized per-tensor masks),
    # then each level reads its mode's column.
    coords = state.get("coords")
    if coords is None:
        coords = tensor.delinearized()
        state["coords"] = coords
    return coords[:, level.mode]


_EXPANDERS: Dict[str, Callable] = {
    "singleton": _expand_singleton,
    "compressed": _expand_compressed,
    "blocked": _expand_blocked,
    "linearized": _expand_linearized,
}
