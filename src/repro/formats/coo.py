"""COO (coordinate) sparse tensor — the baseline format of the paper.

A COO tensor stores, for each nonzero, its full coordinate tuple plus its
value.  It is the format tensors arrive in (FROSTT ``.tns`` files are COO)
and the baseline every HiCOO result is normalized against.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..kernels.gather import scatter_add
from ..obs import metrics
from ..util.bitops import (bits_for, morton_encode, morton_sort_order,
                           pack_key64, stable_argsort_u64)
from ..util.validation import check_factors, check_indices, check_mode, check_shape
from .base import SparseTensorFormat

__all__ = ["CooTensor", "lex_sort_order_of"]


def lex_sort_order_of(indices: np.ndarray, shape, mode_order) -> np.ndarray:
    """Stable permutation sorting ``indices`` lexicographically by
    ``mode_order`` (``mode_order[0]`` most significant).

    The single-word radix fast path applies whenever the packed coordinate
    widths fit 64 bits.  Shared by :meth:`CooTensor.lex_sort_order` and the
    direct converters (which sort level-expanded coordinates without ever
    materializing a COO tensor).
    """
    if len(indices) == 0:
        return np.empty(0, dtype=np.int64)
    widths = [bits_for(shape[m] - 1) for m in mode_order]
    if sum(widths) <= 64:
        # all coordinates fit one packed word: a single stable radix
        # argsort replaces the N-key lexsort.
        key = pack_key64([indices[:, m] for m in mode_order], widths)
        return stable_argsort_u64(key)
    # np.lexsort: last key is primary, so feed least-significant first.
    keys = tuple(indices[:, m] for m in reversed(list(mode_order)))
    return np.lexsort(keys)


class CooTensor(SparseTensorFormat):
    """Sparse tensor in coordinate format.

    Parameters
    ----------
    shape : mode sizes.
    indices : (nnz, nmodes) integer coordinates.
    values : (nnz,) nonzero values.
    sum_duplicates : if True (default), repeated coordinates are combined by
        summing their values, matching the semantics of sparse constructors
        in SciPy.
    """

    format_name = "coo"

    def __init__(self, shape, indices, values, *, sum_duplicates: bool = True):
        self._shape = check_shape(shape)
        indices = check_indices(indices, self._shape)
        values = np.asarray(values, dtype=np.float64).ravel()
        if len(values) != len(indices):
            raise ValueError(
                f"got {len(indices)} coordinates but {len(values)} values"
            )
        if sum_duplicates and len(indices):
            indices, values = _sum_duplicates(indices, values)
        self.indices = indices
        self.values = values

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, array: np.ndarray) -> "CooTensor":
        array = np.asarray(array, dtype=np.float64)
        idx = np.argwhere(array != 0)
        vals = array[tuple(idx.T)] if idx.size else np.empty(0)
        return cls(array.shape, idx, vals, sum_duplicates=False)

    @classmethod
    def empty(cls, shape) -> "CooTensor":
        shape = check_shape(shape)
        return cls(shape, np.empty((0, len(shape)), dtype=np.int64), np.empty(0))

    # ------------------------------------------------------------------
    # format interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.values)

    def to_coo(self) -> "CooTensor":
        return self

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray (guard against huge shapes)."""
        size = int(np.prod(self._shape))
        if size > 50_000_000:
            raise MemoryError(
                f"refusing to densify a tensor with {size} elements"
            )
        out = np.zeros(self._shape)
        np.add.at(out, tuple(self.indices.T), self.values)
        return out

    def storage_bytes(self) -> dict:
        """Canonical COO storage: beta_int = 4 bytes per index per mode and
        beta_float = 4 bytes per value, as accounted in the paper."""
        return {
            "indices": 4 * self.nmodes * self.nnz,
            "values": 4 * self.nnz,
        }

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def lex_sort_order(self, mode_order: Optional[Sequence[int]] = None) -> np.ndarray:
        """Memoized permutation sorting nonzeros lexicographically.

        ``mode_order[0]`` is the most significant mode.  The permutation is
        cached per mode order in the construction cache, so every CSF tree
        built from this tensor (and repeated ``sort_lexicographic`` calls)
        pays the sort once.  Callers must not mutate the returned array.
        """
        if mode_order is None:
            mode_order = range(self.nmodes)
        mode_order = tuple(check_mode(m, self.nmodes) for m in mode_order)
        if sorted(mode_order) != list(range(self.nmodes)):
            raise ValueError(f"mode_order must be a permutation, got {list(mode_order)}")
        cache = self.__dict__.setdefault("_convert_cache", {})
        key = ("lex", mode_order)
        order = cache.get(key)
        if order is None:
            metrics.inc("convert.lex_builds")
            order = self._lex_sort_order(mode_order)
            cache[key] = order
        else:
            metrics.inc("convert.lex_hits")
        return order

    def _lex_sort_order(self, mode_order) -> np.ndarray:
        return lex_sort_order_of(self.indices, self._shape, mode_order)

    def sort_lexicographic(self, mode_order: Optional[Sequence[int]] = None) -> "CooTensor":
        """Return a copy sorted lexicographically by ``mode_order``.

        ``mode_order[0]`` is the most significant mode, which is the layout a
        CSF tree with that root expects.
        """
        return self._permuted(self.lex_sort_order(mode_order))

    def sort_morton(self, block_bits: int = 0) -> "CooTensor":
        """Return a copy sorted in Z-Morton order.

        With ``block_bits > 0`` the Morton code is taken over *block*
        coordinates (index >> block_bits) and element offsets are ordered
        lexicographically inside each block — exactly the nonzero ordering
        HiCOO construction uses.
        """
        if self.nnz == 0:
            return self._permuted(np.empty(0, dtype=np.int64))
        if not block_bits:
            nbits = bits_for(int(self.indices.max()))
            return self._permuted(morton_sort_order(self.indices.T, nbits))
        blocks = self.indices >> block_bits
        nbits = bits_for(int(blocks.max()))
        nmodes = self.nmodes
        if nmodes * (nbits + block_bits) <= 64:
            # single-word fast path: block Morton code in the high bits,
            # mode-0-major offsets in the low bits — the exact HiCOO
            # ordering from one stable argsort.
            key = morton_encode(blocks.T, nbits)[0] << np.uint64(
                nmodes * block_bits)
            offsets = self.indices & ((1 << block_bits) - 1)
            key |= pack_key64([offsets[:, m] for m in range(nmodes)],
                              [block_bits] * nmodes)
            return self._permuted(stable_argsort_u64(key))
        order = morton_sort_order(blocks.T, nbits)
        # Within each run of equal block coordinates, re-sort by element
        # offset.  The run id (Morton rank of the block) is the primary
        # lexsort key, so the Morton ordering *between* blocks survives.
        permuted = self.indices[order]
        pblocks = permuted >> block_bits
        offsets = permuted & ((1 << block_bits) - 1)
        changed = np.any(pblocks[1:] != pblocks[:-1], axis=1)
        run_id = np.concatenate([[0], np.cumsum(changed)])
        keys = tuple(offsets[:, m] for m in reversed(range(self.nmodes)))
        return self._permuted(order[np.lexsort(keys + (run_id,))])

    # ------------------------------------------------------------------
    # construction cache (one-sort multi-b conversion)
    # ------------------------------------------------------------------
    def morton_context(self):
        """Memoized :class:`~repro.core.convert.MortonContext` — one Morton
        encode + sort shared by every block size.

        HiCOO construction, ``best_block_bits``, the tuner, and the E7/E10
        benchmarks all go through this context, so a full block-size sweep
        pays for one sort instead of eight.  Treat the context's arrays as
        read-only, like the ``task_gather`` cache.
        """
        from ..core.convert import MortonContext

        cache = self.__dict__.setdefault("_convert_cache", {})
        ctx = cache.get("context")
        if ctx is None:
            metrics.inc("convert.context_builds")
            ctx = MortonContext(self)
            cache["context"] = ctx
            metrics.set_gauge("convert.cache_bytes",
                              self.convert_cache_bytes())
        else:
            metrics.inc("convert.context_hits")
        return ctx

    def alto_context(self):
        """Memoized :class:`~repro.formats.alto.AltoContext` — the adaptive
        linearization shared by every :class:`AltoTensor` built from this
        tensor.

        When the per-mode bit widths are uniform the ALTO layout coincides
        with the Morton layout, so the context is derived from
        :meth:`morton_context` and conversion to *both* HiCOO and ALTO costs
        a single encode + sort.  Treat the context's arrays as read-only.
        """
        from ..util.bitops import alto_widths
        from .alto import AltoContext

        cache = self.__dict__.setdefault("_convert_cache", {})
        ctx = cache.get("alto")
        if ctx is None:
            metrics.inc("convert.alto_builds")
            morton = None
            if self.nnz and len(set(alto_widths(self._shape))) == 1:
                morton = self.morton_context()
            ctx = AltoContext(self, morton)
            cache["alto"] = ctx
            metrics.set_gauge("convert.cache_bytes",
                              self.convert_cache_bytes())
        else:
            metrics.inc("convert.alto_hits")
        return ctx

    def block_decomposition(self, block_bits: int):
        """Memoized block decomposition at ``block_bits`` (shared arrays).

        Identical to :func:`repro.core.blocking.decompose` but derived from
        the cached :meth:`morton_context`, so repeated constructions — the
        tuner's sweep, several :class:`HicooTensor` instances — reuse one
        encode + sort.  Callers must treat the result as read-only.
        """
        return self.morton_context().decompose(block_bits)

    def clear_convert_cache(self) -> None:
        """Drop the memoized Morton context, decompositions and lex orders."""
        self.__dict__.setdefault("_convert_cache", {}).clear()

    def convert_cache_bytes(self) -> int:
        """Total footprint of the construction cache."""
        cache = self.__dict__.setdefault("_convert_cache", {})
        total = 0
        for key, entry in cache.items():
            if key in ("context", "alto"):
                total += entry.nbytes()
            else:
                total += entry.nbytes
        return int(total)

    def _permuted(self, order: np.ndarray) -> "CooTensor":
        out = CooTensor.__new__(CooTensor)
        out._shape = self._shape
        out.indices = self.indices[order]
        out.values = self.values[order]
        return out

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def mttkrp(self, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
        """Vectorized COO MTTKRP.

        For each nonzero ``x[i_1..i_N]`` accumulates
        ``x * hadamard_{m != mode} U^(m)[i_m, :]`` into row ``i_mode`` of the
        output.  This is the unsorted-COO algorithm the paper benchmarks as
        its baseline (one gather per non-target mode, one scatter-add).
        """
        factors = check_factors(factors, self._shape)
        mode = check_mode(mode, self.nmodes)
        rank = factors[0].shape[1]
        out = np.zeros((self._shape[mode], rank))
        if self.nnz == 0:
            return out
        acc = self.values[:, None] * _row_products(factors, self.indices, mode)
        scatter_add(out, self.indices[:, mode], acc)
        return out

    def ttv(self, vector: np.ndarray, mode: int) -> "CooTensor":
        """Tensor-times-vector: contract ``mode`` with ``vector``.

        The result is an (N-1)-mode COO tensor; coordinates that coincide
        after dropping ``mode`` are summed.
        """
        mode = check_mode(mode, self.nmodes)
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if len(vector) != self._shape[mode]:
            raise ValueError(
                f"vector has length {len(vector)}, expected {self._shape[mode]}"
            )
        if self.nmodes == 1:
            raise ValueError("cannot contract the only mode of a 1-mode tensor")
        keep = [m for m in range(self.nmodes) if m != mode]
        new_shape = tuple(self._shape[m] for m in keep)
        new_vals = self.values * vector[self.indices[:, mode]]
        new_inds = self.indices[:, keep]
        return CooTensor(new_shape, new_inds, new_vals, sum_duplicates=True)

    def norm(self) -> float:
        return float(np.linalg.norm(self.values))

    def innerprod_ktensor(self, weights: np.ndarray, factors: Sequence[np.ndarray]) -> float:
        """<X, [[weights; factors]]> without forming the dense Kruskal tensor."""
        factors = check_factors(factors, self._shape)
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if self.nnz == 0:
            return 0.0
        prod = np.ones((self.nnz, factors[0].shape[1]))
        for m, f in enumerate(factors):
            prod *= f[self.indices[:, m]]
        return float(self.values @ (prod @ weights))

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def slice_counts(self, mode: int) -> np.ndarray:
        """nnz per slice along ``mode`` (length ``shape[mode]``)."""
        mode = check_mode(mode, self.nmodes)
        return np.bincount(self.indices[:, mode], minlength=self._shape[mode])

    def remove_empty_slices(self) -> "CooTensor":
        """Re-index every mode so that empty slices disappear (paper-standard
        preprocessing for real datasets)."""
        inds = self.indices.copy()
        new_shape = []
        for m in range(self.nmodes):
            used, inverse = np.unique(inds[:, m], return_inverse=True)
            inds[:, m] = inverse
            new_shape.append(max(1, len(used)))
        return CooTensor(tuple(new_shape), inds, self.values, sum_duplicates=False)


def _sum_duplicates(indices: np.ndarray, values: np.ndarray):
    nmodes = indices.shape[1]
    widths = [bits_for(int(indices[:, m].max())) for m in range(nmodes)]
    if sum(widths) <= 64:
        # one packed word per coordinate tuple: a single stable argsort
        # replaces the N-key lexsort (same mode-0-major order).
        key = pack_key64([indices[:, m] for m in range(nmodes)], widths)
        order = stable_argsort_u64(key)
    else:
        keys = tuple(indices[:, m] for m in reversed(range(nmodes)))
        order = np.lexsort(keys)
    indices = indices[order]
    values = values[order]
    if len(indices) <= 1:
        return indices, values
    new_group = np.any(indices[1:] != indices[:-1], axis=1)
    group_id = np.concatenate([[0], np.cumsum(new_group)])
    ngroups = group_id[-1] + 1
    out_vals = np.zeros(ngroups)
    # group ids come from a cumulative sum, hence non-decreasing
    scatter_add(out_vals, group_id, values, presorted=True)
    first = np.concatenate([[0], np.flatnonzero(new_group) + 1])
    return indices[first], out_vals


def _row_products(factors, indices, skip_mode):
    """Hadamard product of the factor rows of every non-target mode."""
    rank = factors[0].shape[1]
    prod = np.ones((len(indices), rank))
    for m, f in enumerate(factors):
        if m == skip_mode:
            continue
        prod *= f[indices[:, m]]
    return prod
