"""ASCII visualization of HiCOO block structure.

Projects the block-occupancy pattern of a HiCOO tensor onto a chosen pair
of modes and renders a density heatmap with ASCII shades — enough to *see*
whether a tensor is blockable (dense clumps) or scattered (uniform speckle)
directly in a terminal.  Used by the ``hicoo-repro inspect --viz`` CLI and
by the examples.
"""

from __future__ import annotations

import numpy as np

from ..core.hicoo import HicooTensor
from ..util.validation import check_mode

__all__ = ["block_density_grid", "render_heatmap"]

_SHADES = " .:-=+*#%@"


def block_density_grid(tensor: HicooTensor, mode_x: int = 0, mode_y: int = 1,
                       max_cells: int = 64) -> np.ndarray:
    """2-D histogram of nonzeros over (mode_x, mode_y) block coordinates.

    The block grid is rebinned down to at most ``max_cells`` per axis so
    huge tensors still render on one screen.  Returns a float array whose
    entries sum to ``tensor.nnz``.
    """
    mode_x = check_mode(mode_x, tensor.nmodes)
    mode_y = check_mode(mode_y, tensor.nmodes)
    if mode_x == mode_y:
        raise ValueError("mode_x and mode_y must differ")
    if max_cells < 1:
        raise ValueError(f"max_cells must be positive, got {max_cells}")
    bits = tensor.block_bits
    nx = max(1, (tensor.shape[mode_x] + (1 << bits) - 1) >> bits)
    ny = max(1, (tensor.shape[mode_y] + (1 << bits) - 1) >> bits)
    gx = min(nx, max_cells)
    gy = min(ny, max_cells)
    grid = np.zeros((gx, gy))
    if tensor.nblocks == 0:
        return grid
    bx = tensor.binds[:, mode_x].astype(np.int64) * gx // nx
    by = tensor.binds[:, mode_y].astype(np.int64) * gy // ny
    np.add.at(grid, (bx, by), tensor.block_nnz())
    return grid


def render_heatmap(grid: np.ndarray, title: str = "") -> str:
    """Render a density grid with ASCII shades (rows = first axis).

    Density is scaled logarithmically so heavy blocks do not wash out the
    speckle structure of light regions.
    """
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError(f"grid must be 2-D, got shape {grid.shape}")
    lines = []
    if title:
        lines.append(title)
    peak = np.log1p(grid.max())
    for row in grid:
        if peak > 0:
            levels = (np.log1p(row) / peak * (len(_SHADES) - 1)).astype(int)
        else:
            levels = np.zeros(len(row), dtype=int)
        lines.append("".join(_SHADES[v] for v in levels))
    lines.append(f"[{grid.shape[0]}x{grid.shape[1]} cells, "
                 f"{int(grid.sum())} nonzeros, darkest={int(grid.max())}]")
    return "\n".join(lines)
