"""Text rendering of benchmark tables and figure series.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["render_table", "render_series", "fmt"]


def fmt(value, width: int = 10, prec: int = 3) -> str:
    """Format one cell: ints plain, floats with ``prec`` digits."""
    if isinstance(value, bool):
        return f"{str(value):>{width}s}"
    if isinstance(value, int):
        return f"{value:>{width}d}"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 10**6 or abs(value) < 10**-prec):
            return f"{value:>{width}.{prec}e}"
        return f"{value:>{width}.{prec}f}"
    return f"{str(value):>{width}s}"


def render_table(rows: Sequence[Dict], columns: Sequence[str],
                 title: str = "", widths: Dict[str, int] | None = None) -> str:
    """Render dict-rows as an aligned text table.

    Missing cells render as '-'.  The first column is left-aligned.
    """
    widths = widths or {}
    col_w = {}
    for c in columns:
        w = widths.get(c, max(10, len(c) + 1))
        col_w[c] = w
    lines = []
    if title:
        lines.append(title)
    header_cells = []
    for i, c in enumerate(columns):
        header_cells.append(f"{c:<{col_w[c]}s}" if i == 0 else f"{c:>{col_w[c]}s}")
    header = " ".join(header_cells)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for i, c in enumerate(columns):
            v = row.get(c, "-")
            if i == 0:
                cells.append(f"{str(v):<{col_w[c]}s}")
            else:
                cells.append(fmt(v, width=col_w[c]))
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_series(x_label: str, xs: Sequence, series: Dict[str, Sequence[float]],
                  title: str = "", width: int = 10) -> str:
    """Render figure data: one row per x value, one column per series."""
    lines = []
    if title:
        lines.append(title)
    names = list(series)
    header = f"{x_label:<{width}s} " + " ".join(f"{n:>{width}s}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        cells = " ".join(fmt(float(series[n][i]), width=width) for n in names)
        lines.append(f"{str(x):<{width}s} {cells}")
    return "\n".join(lines)
