"""Predicted-performance assembly: work counts x machine model -> figures.

These functions produce exactly the series the paper's figures plot —
per-tensor speedups of HiCOO over COO and CSF (sequential and parallel) and
thread-scaling curves — from the counted work of
:mod:`repro.analysis.traffic` and a :class:`repro.parallel.machine.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.hicoo import HicooTensor
from ..core.scheduler import schedule_mode
from ..core.superblock import build_superblocks
from ..formats.base import SparseTensorFormat
from ..formats.coo import CooTensor
from ..formats.csf import CsfTensor
from ..parallel.machine import Machine, Prediction
from .traffic import mttkrp_work

__all__ = [
    "FormatTimings",
    "predict_mttkrp",
    "predict_all_modes",
    "speedup_over_coo",
    "thread_scaling",
    "build_format_suite",
]


@dataclass
class FormatTimings:
    """Predicted per-mode MTTKRP seconds for one format on one tensor."""

    format_name: str
    nthreads: int
    mode_seconds: List[float]

    @property
    def total(self) -> float:
        return float(sum(self.mode_seconds))


def predict_mttkrp(tensor: SparseTensorFormat, mode: int, rank: int,
                   machine: Machine, nthreads: int = 1) -> Prediction:
    """Predicted seconds of one MTTKRP launch.

    The HiCOO path evaluates *both* of the paper's parallel strategies and
    keeps the faster, exactly as the tuned kernels do per tensor:

    * lock-free superblock scheduling — no extra traffic, but the schedule's
      load imbalance discounts the effective thread count;
    * privatization — full parallelism, plus the traffic of zeroing and
      reducing ``nthreads`` private output copies.

    COO's parallel baseline is the paper's atomic-update kernel.
    """
    parallel = nthreads > 1
    work = mttkrp_work(tensor, mode, rank, parallel=parallel)
    if parallel and isinstance(tensor, HicooTensor):
        rows = tensor.shape[mode]
        sbs = build_superblocks(tensor, min(tensor.block_bits + 3, 20))
        sched = schedule_mode(sbs, mode, nthreads)
        eff = min(sched.effective_parallelism() / nthreads, 1.0)
        scheduled = machine.predict(
            flops=work.flops,
            bytes_moved=work.bytes_moved,
            nthreads=max(1, int(round(nthreads * eff))),
        )
        reduction_bytes = (nthreads + 1.0) * rows * rank * 8
        privatized = machine.predict(
            flops=work.flops,
            bytes_moved=work.bytes_moved + reduction_bytes,
            nthreads=nthreads,
        )
        return min(scheduled, privatized, key=lambda p: p.seconds)
    return machine.predict(
        flops=work.flops,
        bytes_moved=work.bytes_moved,
        nthreads=nthreads,
        atomic_updates=work.atomic_updates,
    )


def predict_all_modes(tensor: SparseTensorFormat, rank: int, machine: Machine,
                      nthreads: int = 1) -> FormatTimings:
    """Per-mode predictions (the paper reports MTTKRP summed over modes)."""
    secs = [
        predict_mttkrp(tensor, mode, rank, machine, nthreads).seconds
        for mode in range(tensor.nmodes)
    ]
    return FormatTimings(
        format_name=tensor.format_name,
        nthreads=nthreads,
        mode_seconds=secs,
    )


def build_format_suite(coo: CooTensor, block_bits: int = 7,
                       mode_order: Optional[Sequence[int]] = None) -> Dict[str, SparseTensorFormat]:
    """The three competing instances of one tensor: COO, CSF, HiCOO."""
    return {
        "coo": coo,
        "csf": CsfTensor(coo, mode_order=mode_order),
        "hicoo": HicooTensor(coo, block_bits=block_bits),
    }


def speedup_over_coo(coo: CooTensor, rank: int, machine: Machine,
                     nthreads: int = 1, block_bits: int = 7) -> Dict[str, float]:
    """One bar-group of the paper's speedup figures: for each format, the
    predicted all-mode MTTKRP speedup relative to COO at ``nthreads``."""
    suite = build_format_suite(coo, block_bits=block_bits)
    base = predict_all_modes(suite["coo"], rank, machine, nthreads).total
    out = {}
    for name, tensor in suite.items():
        total = predict_all_modes(tensor, rank, machine, nthreads).total
        out[name] = base / total if total else float("inf")
    return out


def thread_scaling(coo: CooTensor, rank: int, machine: Machine,
                   thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
                   block_bits: int = 7) -> Dict[str, List[float]]:
    """Thread-scaling series (experiment E6): for each format, the predicted
    speedup at each thread count relative to its own single-thread time."""
    suite = build_format_suite(coo, block_bits=block_bits)
    series: Dict[str, List[float]] = {}
    for name, tensor in suite.items():
        t1 = predict_all_modes(tensor, rank, machine, 1).total
        series[name] = [
            t1 / predict_all_modes(tensor, rank, machine, p).total
            for p in thread_counts
        ]
    return series
