"""Predicted-performance assembly: work counts x machine model -> figures.

These functions produce exactly the series the paper's figures plot —
per-tensor speedups of HiCOO over COO and CSF (sequential and parallel) and
thread-scaling curves — from the counted work of
:mod:`repro.analysis.traffic` and a :class:`repro.parallel.machine.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.hicoo import HicooTensor
from ..core.scheduler import schedule_mode
from ..core.superblock import build_superblocks
from ..formats.alto import AltoTensor
from ..formats.base import SparseTensorFormat
from ..formats.coo import CooTensor
from ..formats.csf import CsfTensor
from ..parallel.machine import Machine, Prediction
from .traffic import mttkrp_work

__all__ = [
    "FormatTimings",
    "FormatStats",
    "PROBE_BLOCK_BITS",
    "predict_mttkrp",
    "predict_all_modes",
    "speedup_over_coo",
    "thread_scaling",
    "build_format_suite",
    "format_stats",
]

#: block size probed when summarizing a tensor's blocking behaviour for the
#: format chooser: 2^4 = 16 per mode, the middle of HiCOO's useful range.
PROBE_BLOCK_BITS = 4


@dataclass
class FormatTimings:
    """Predicted per-mode MTTKRP seconds for one format on one tensor."""

    format_name: str
    nthreads: int
    mode_seconds: List[float]

    @property
    def total(self) -> float:
        return float(sum(self.mode_seconds))


def predict_mttkrp(tensor: SparseTensorFormat, mode: int, rank: int,
                   machine: Machine, nthreads: int = 1) -> Prediction:
    """Predicted seconds of one MTTKRP launch.

    The HiCOO path evaluates *both* of the paper's parallel strategies and
    keeps the faster, exactly as the tuned kernels do per tensor:

    * lock-free superblock scheduling — no extra traffic, but the schedule's
      load imbalance discounts the effective thread count;
    * privatization — full parallelism, plus the traffic of zeroing and
      reducing ``nthreads`` private output copies.

    COO's parallel baseline is the paper's atomic-update kernel.
    """
    parallel = nthreads > 1
    work = mttkrp_work(tensor, mode, rank, parallel=parallel)
    if parallel and isinstance(tensor, HicooTensor):
        rows = tensor.shape[mode]
        sbs = build_superblocks(tensor, min(tensor.block_bits + 3, 20))
        sched = schedule_mode(sbs, mode, nthreads)
        eff = min(sched.effective_parallelism() / nthreads, 1.0)
        scheduled = machine.predict(
            flops=work.flops,
            bytes_moved=work.bytes_moved,
            nthreads=max(1, int(round(nthreads * eff))),
        )
        reduction_bytes = (nthreads + 1.0) * rows * rank * 8
        privatized = machine.predict(
            flops=work.flops,
            bytes_moved=work.bytes_moved + reduction_bytes,
            nthreads=nthreads,
        )
        return min(scheduled, privatized, key=lambda p: p.seconds)
    return machine.predict(
        flops=work.flops,
        bytes_moved=work.bytes_moved,
        nthreads=nthreads,
        atomic_updates=work.atomic_updates,
    )


def predict_all_modes(tensor: SparseTensorFormat, rank: int, machine: Machine,
                      nthreads: int = 1) -> FormatTimings:
    """Per-mode predictions (the paper reports MTTKRP summed over modes)."""
    secs = [
        predict_mttkrp(tensor, mode, rank, machine, nthreads).seconds
        for mode in range(tensor.nmodes)
    ]
    return FormatTimings(
        format_name=tensor.format_name,
        nthreads=nthreads,
        mode_seconds=secs,
    )


def build_format_suite(coo: CooTensor, block_bits: int = 7,
                       mode_order: Optional[Sequence[int]] = None) -> Dict[str, SparseTensorFormat]:
    """The four competing instances of one tensor: COO, CSF, HiCOO, ALTO."""
    return {
        "coo": coo,
        "csf": CsfTensor(coo, mode_order=mode_order),
        "hicoo": HicooTensor(coo, block_bits=block_bits),
        "alto": AltoTensor(coo),
    }


@dataclass(frozen=True)
class FormatStats:
    """Structural summary a format decision can be made from.

    Recorded once per tensor (one O(nnz log nnz) pass), then
    :func:`repro.core.tuner.choose_format` is a pure function of these
    numbers — the same stats always produce the same pick.
    """

    nnz: int
    nmodes: int
    shape: tuple
    #: block ratio nblocks/nnz at :data:`PROBE_BLOCK_BITS` — the paper's
    #: alpha_b; small means dense blocks (HiCOO's regime), near 1 means
    #: almost every nonzero sits alone in its block.
    alpha_b: float
    #: max over modes of (heaviest slice nnz / mean nonempty slice nnz);
    #: 1 is perfectly uniform, large means a few slices dominate (the
    #: skew that breaks row-disjoint superblock schedules).
    mode_skew: float
    #: max over modes of nnz / distinct (N-1)-mode fibers — how many
    #: nonzeros share a fiber under the best root choice (CSF's regime
    #: when well above 1).
    fiber_reuse: float


def format_stats(coo: CooTensor) -> FormatStats:
    """Measure the nnz-distribution stats behind data-driven format choice.

    Reuses the memoized :meth:`~repro.formats.coo.CooTensor.morton_context`
    for the block count, so calling this before building HiCOO (the common
    tuner path) costs one shared sort plus two O(nnz) passes.
    """
    nnz = coo.nnz
    nmodes = coo.nmodes
    if nnz == 0:
        return FormatStats(nnz=0, nmodes=nmodes, shape=tuple(coo.shape),
                           alpha_b=1.0, mode_skew=1.0, fiber_reuse=1.0)
    alpha_b = coo.morton_context().nblocks(PROBE_BLOCK_BITS) / nnz
    skew = 1.0
    reuse = 1.0
    for m in range(nmodes):
        counts = np.bincount(coo.indices[:, m],
                             minlength=coo.shape[m]).astype(np.float64)
        nonempty = counts[counts > 0]
        skew = max(skew, float(nonempty.max() / nonempty.mean()))
        if nmodes > 1:
            others = [i for i in range(nmodes) if i != m]
            nfibers = len(np.unique(coo.indices[:, others], axis=0))
            reuse = max(reuse, nnz / nfibers)
    return FormatStats(nnz=nnz, nmodes=nmodes, shape=tuple(coo.shape),
                       alpha_b=float(alpha_b), mode_skew=skew,
                       fiber_reuse=float(reuse))


def speedup_over_coo(coo: CooTensor, rank: int, machine: Machine,
                     nthreads: int = 1, block_bits: int = 7) -> Dict[str, float]:
    """One bar-group of the paper's speedup figures: for each format, the
    predicted all-mode MTTKRP speedup relative to COO at ``nthreads``."""
    suite = build_format_suite(coo, block_bits=block_bits)
    base = predict_all_modes(suite["coo"], rank, machine, nthreads).total
    out = {}
    for name, tensor in suite.items():
        total = predict_all_modes(tensor, rank, machine, nthreads).total
        out[name] = base / total if total else float("inf")
    return out


def thread_scaling(coo: CooTensor, rank: int, machine: Machine,
                   thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
                   block_bits: int = 7) -> Dict[str, List[float]]:
    """Thread-scaling series (experiment E6): for each format, the predicted
    speedup at each thread count relative to its own single-thread time."""
    suite = build_format_suite(coo, block_bits=block_bits)
    series: Dict[str, List[float]] = {}
    for name, tensor in suite.items():
        t1 = predict_all_modes(tensor, rank, machine, 1).total
        series[name] = [
            t1 / predict_all_modes(tensor, rank, machine, p).total
            for p in thread_counts
        ]
    return series
