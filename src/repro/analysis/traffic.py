"""Exact operation and memory-traffic counting for MTTKRP kernels.

The paper's performance argument is architectural: HiCOO reads fewer index
bytes than COO (1-byte offsets vs 4-byte coordinates) and reuses factor rows
within a block, while COO pays a gather per nonzero per mode and an atomic
scatter per nonzero.  Those quantities are *countable* exactly from the data
structures — no timing involved — and this module counts them.  The machine
model (:mod:`repro.analysis.model`) turns the counts into predicted times;
because every format's count comes from the same accounting rules, the
*ratios* (HiCOO vs COO vs CSF — the shapes of the paper's figures) are
measurement-independent.

Accounting rules (documented reconstruction, DESIGN.md section 2):

* index traffic — each structure array is streamed once at its stored width;
* factor gathers — 8-byte double rows of width R; COO reloads per nonzero
  (no locality), HiCOO loads each *distinct* row once per block (block edge
  B <= 256 keeps the rows cache-resident), CSF loads one row per fiber-tree
  node;
* output scatter — read+write per update: per nonzero for COO, per distinct
  row per block for HiCOO, per target-level node for CSF;
* flops — one multiply per non-target mode plus one add, times R, per
  nonzero (all formats perform the same arithmetic; CSF saves the multiplies
  its tree factors out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..core.hicoo import HicooTensor
from ..formats.alto import AltoTensor
from ..formats.base import SparseTensorFormat
from ..formats.coo import CooTensor
from ..formats.csf import CsfTensor
from ..util.validation import check_mode

__all__ = ["KernelWork", "mttkrp_work", "cp_als_iteration_work",
           "RequestStream"]

FLOAT_BYTES = 8  # computation uses doubles
VALUE_BYTES = 4  # stored values are single precision (paper accounting)


@dataclass
class KernelWork:
    """Counted work of one kernel launch."""

    flops: float = 0.0
    bytes_moved: float = 0.0
    atomic_updates: float = 0.0
    detail: Dict[str, float] = field(default_factory=dict)

    def arithmetic_intensity(self) -> float:
        """flops per byte — position on the roofline."""
        return self.flops / self.bytes_moved if self.bytes_moved else 0.0

    def __add__(self, other: "KernelWork") -> "KernelWork":
        detail = dict(self.detail)
        for k, v in other.detail.items():
            detail[k] = detail.get(k, 0.0) + v
        return KernelWork(
            flops=self.flops + other.flops,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            atomic_updates=self.atomic_updates + other.atomic_updates,
            detail=detail,
        )


def mttkrp_work(tensor: SparseTensorFormat, mode: int, rank: int,
                parallel: bool = False) -> KernelWork:
    """Count the flops / bytes / atomics of one MTTKRP along ``mode``.

    ``parallel=True`` marks COO's scatter updates as atomic (the contended
    case the machine model charges for); sequential runs pay no atomics.
    """
    if not isinstance(tensor, (HicooTensor, CsfTensor, CooTensor,
                               AltoTensor)):
        raise TypeError(f"no work model for format {type(tensor).__name__}")
    mode = check_mode(mode, tensor.nmodes)
    if rank < 1:
        raise ValueError(f"rank must be positive, got {rank}")
    if isinstance(tensor, HicooTensor):
        return _hicoo_work(tensor, mode, rank)
    if isinstance(tensor, CsfTensor):
        return _csf_work(tensor, mode, rank)
    if isinstance(tensor, AltoTensor):
        return _alto_work(tensor, mode, rank)
    if isinstance(tensor, CooTensor):
        return _coo_work(tensor, mode, rank, parallel)
    raise TypeError(f"no work model for format {type(tensor).__name__}")


def _coo_work(tensor: CooTensor, mode: int, rank: int,
              parallel: bool) -> KernelWork:
    n, nnz = tensor.nmodes, tensor.nnz
    index_bytes = 4 * n * nnz + VALUE_BYTES * nnz
    gather_bytes = (n - 1) * rank * FLOAT_BYTES * nnz
    scatter_bytes = 2 * rank * FLOAT_BYTES * nnz
    flops = n * rank * nnz
    return KernelWork(
        flops=flops,
        bytes_moved=index_bytes + gather_bytes + scatter_bytes,
        atomic_updates=nnz if parallel else 0,
        detail={
            "index_bytes": index_bytes,
            "gather_bytes": gather_bytes,
            "scatter_bytes": scatter_bytes,
        },
    )


def _hicoo_work(tensor: HicooTensor, mode: int, rank: int) -> KernelWork:
    n, nnz, nb = tensor.nmodes, tensor.nnz, tensor.nblocks
    index_bytes = (8 * (nb + 1) + 4 * n * nb + 1 * n * nnz
                   + VALUE_BYTES * nnz)
    distinct = _distinct_rows_per_block(tensor)
    gather_rows = sum(distinct[m] for m in range(n) if m != mode)
    gather_bytes = gather_rows * rank * FLOAT_BYTES
    scatter_bytes = 2 * distinct[mode] * rank * FLOAT_BYTES
    flops = n * rank * nnz
    return KernelWork(
        flops=flops,
        bytes_moved=index_bytes + gather_bytes + scatter_bytes,
        atomic_updates=0,  # lock-free by scheduling
        detail={
            "index_bytes": index_bytes,
            "gather_bytes": gather_bytes,
            "scatter_bytes": scatter_bytes,
            "distinct_rows": float(sum(distinct)),
        },
    )


def _distinct_rows_per_block(tensor: HicooTensor) -> np.ndarray:
    """For each mode: total over blocks of the number of distinct factor
    rows the block touches (exact, from binds/einds)."""
    counts = np.zeros(tensor.nmodes, dtype=np.int64)
    if tensor.nnz == 0:
        return counts
    blk = tensor._nnz_block_of
    for m in range(tensor.nmodes):
        key = blk * np.int64(tensor.block_size) + tensor.einds[:, m].astype(np.int64)
        counts[m] = len(np.unique(key))
    return counts


def _alto_work(tensor: AltoTensor, mode: int, rank: int) -> KernelWork:
    """ALTO streams one W-word linearized key per nonzero (W = ceil of the
    summed adaptive mode widths over 64), gathers like COO (no block-level
    row reuse — the trade ALTO makes for zero grid overhead), and scatters
    once per *distinct* output row because the mode view is row-sorted and
    the equal-nnz partition is row-disjoint (no atomics, no privatization
    copies on the schedule path)."""
    n, nnz = tensor.nmodes, tensor.nnz
    nwords = tensor.keys.shape[0] if nnz else 0
    index_bytes = 8 * nwords * nnz + VALUE_BYTES * nnz
    gather_bytes = (n - 1) * rank * FLOAT_BYTES * nnz
    distinct = len(tensor.row_segments(mode))
    scatter_bytes = 2 * distinct * rank * FLOAT_BYTES
    flops = n * rank * nnz
    return KernelWork(
        flops=flops,
        bytes_moved=index_bytes + gather_bytes + scatter_bytes,
        atomic_updates=0,  # row-disjoint equal-nnz partition
        detail={
            "index_bytes": index_bytes,
            "gather_bytes": gather_bytes,
            "scatter_bytes": scatter_bytes,
            "distinct_rows": float(distinct),
        },
    )


def _csf_work(tensor: CsfTensor, mode: int, rank: int) -> KernelWork:
    depth_of_mode = tensor.mode_order.index(mode)
    nmodes = tensor.nmodes
    node_counts = [lvl.nnodes for lvl in tensor.levels]

    index_bytes = VALUE_BYTES * tensor.nnz
    for lvl in tensor.levels:
        index_bytes += 4 * lvl.nnodes
        if lvl.fptr is not None:
            index_bytes += 8 * (lvl.nnodes + 1)

    gather_bytes = 0.0
    flops = 0.0
    # bottom-up pass touches levels below the target; top-down the ones above
    for depth in range(nmodes - 1, depth_of_mode, -1):
        gather_bytes += node_counts[depth] * rank * FLOAT_BYTES
        flops += 2 * node_counts[depth] * rank  # multiply + accumulate
    for depth in range(0, depth_of_mode):
        gather_bytes += node_counts[depth] * rank * FLOAT_BYTES
        flops += node_counts[depth + 1] * rank  # prefix multiply per child
    scatter_bytes = 2 * node_counts[depth_of_mode] * rank * FLOAT_BYTES
    flops += node_counts[depth_of_mode] * rank

    return KernelWork(
        flops=flops,
        bytes_moved=index_bytes + gather_bytes + scatter_bytes,
        atomic_updates=0,
        detail={
            "index_bytes": index_bytes,
            "gather_bytes": gather_bytes,
            "scatter_bytes": scatter_bytes,
        },
    )


def cp_als_iteration_work(tensor: SparseTensorFormat, rank: int,
                          parallel: bool = False) -> KernelWork:
    """Work of one full CP-ALS iteration (MTTKRP in every mode; the dense
    R x R solves are negligible and counted as flops only)."""
    total = KernelWork()
    for mode in range(tensor.nmodes):
        total = total + mttkrp_work(tensor, mode, rank, parallel=parallel)
        dim = tensor.shape[mode]
        # U = M @ pinv(H): ~2 I R^2, gram update ~ I R^2
        total = total + KernelWork(flops=3.0 * dim * rank * rank,
                                   bytes_moved=2.0 * dim * rank * FLOAT_BYTES)
    return total


# ----------------------------------------------------------------------
# request-stream generation (the serve daemon's workload model)
# ----------------------------------------------------------------------
@dataclass
class RequestStream:
    """Seeded generator of a realistic request stream for the serve daemon.

    Models the three load characteristics the serve tests need to be
    deterministic about:

    * **popularity skew** — tensors are chosen Zipf-distributed
      (exponent ``zipf_s`` over the registration order), so a hot tensor
      dominates and its warm plans/sessions actually get exercised;
    * **op/rank mix** — ``op_mix`` weights over MTTKRP / CP-ALS / TTM,
      ranks drawn uniformly from ``ranks`` (a repeated (tensor, mode,
      rank) pair is what makes batching reachable);
    * **poisson arrivals** — exponential inter-arrival gaps at
      ``rate_hz``, carried as an ``arrival_s`` offset the replay runner
      may honour or ignore.

    Everything derives from ``seed`` via one ``default_rng``, so the same
    constructor arguments always yield the identical request list — the
    replay harness and its sequential oracle iterate the same stream.

    ``tensors`` maps tensor name -> number of modes (for drawing a valid
    ``mode``).
    """

    tensors: Dict[str, int]
    n: int = 200
    seed: int = 0
    zipf_s: float = 1.1
    rate_hz: float = 200.0
    op_mix: Dict[str, float] = field(default_factory=lambda: {
        "mttkrp": 0.70, "cp_als": 0.15, "ttm": 0.15})
    ranks: tuple = (2, 4, 8)
    iters: tuple = (1, 2, 3)
    priorities: tuple = (0, 1, 2)

    def generate(self) -> list:
        """The request list: ``n`` protocol-ready dicts, arrival-ordered."""
        if not self.tensors:
            raise ValueError("RequestStream needs at least one tensor")
        rng = np.random.default_rng(self.seed)
        names = list(self.tensors)
        weights = np.array([1.0 / (i + 1) ** self.zipf_s
                            for i in range(len(names))])
        weights /= weights.sum()
        ops = list(self.op_mix)
        op_w = np.array([self.op_mix[o] for o in ops], dtype=float)
        op_w /= op_w.sum()
        gaps = rng.exponential(1.0 / self.rate_hz, size=self.n)
        arrivals = np.cumsum(gaps)
        out = []
        for i in range(self.n):
            name = names[int(rng.choice(len(names), p=weights))]
            op = ops[int(rng.choice(len(ops), p=op_w))]
            req = {
                "op": op,
                "tensor": name,
                "rank": int(rng.choice(self.ranks)),
                "seed": int(rng.integers(0, 2**31)),
                "priority": int(rng.choice(self.priorities)),
                "arrival_s": float(arrivals[i]),
            }
            if op in ("mttkrp", "ttm"):
                req["mode"] = int(rng.integers(0, self.tensors[name]))
            if op == "cp_als":
                req["iters"] = int(rng.choice(self.iters))
            out.append(req)
        return out
