"""Chained sparse TTM: contract every mode but one with small matrices.

The workhorse of sparse Tucker (HOOI): ``Y_n = X x_{m != n} U_m^T`` where
each ``U_m`` is a tall factor (I_m x R_m).  Done naively this densifies
immediately; the sparse formulation keeps the tensor *semi-sparse* —
coordinates over the not-yet-contracted modes, a dense array over the
contracted ranks — and contracts one mode at a time, grouping coordinates
after each step.  This is the same computational pattern ParTI! (HiCOO's
reference library) uses for its sparse Tucker kernels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..formats.coo import CooTensor
from ..util.validation import check_mode

__all__ = ["SemiSparse", "ttm_chain"]


class SemiSparse:
    """Sparse over ``modes``, dense over contracted rank axes.

    Attributes
    ----------
    shape : sizes of the remaining sparse modes.
    modes : the original tensor modes the sparse axes correspond to.
    indices : (n, len(modes)) coordinates.
    values : (n, prod(ranks)) dense payload per coordinate; ``ranks`` keeps
        the per-contracted-mode factorization of that trailing axis.
    ranks : contracted-rank sizes, in contraction order.
    rank_modes : the original mode each rank axis came from (parallel to
        ``ranks``; the leading entry is the dummy size-1 axis of the raw
        values).
    """

    def __init__(self, shape, modes, indices, values, ranks,
                 rank_modes=None):
        self.shape = tuple(shape)
        self.modes = tuple(modes)
        self.indices = indices
        self.values = values
        self.ranks = tuple(ranks)
        self.rank_modes = tuple(rank_modes) if rank_modes is not None \
            else (None,) * len(self.ranks)
        if len(self.shape) != len(self.modes):
            raise ValueError("shape/modes mismatch")
        if indices.shape != (len(values), len(self.modes)):
            raise ValueError("indices/values mismatch")

    @property
    def n(self) -> int:
        return len(self.values)

    @classmethod
    def from_coo(cls, coo: CooTensor) -> "SemiSparse":
        return cls(coo.shape, range(coo.nmodes), coo.indices,
                   coo.values[:, None].copy(), ranks=(1,),
                   rank_modes=(None,))

    def contract(self, orig_mode: int, matrix: np.ndarray) -> "SemiSparse":
        """Contract the sparse axis for ``orig_mode`` with ``matrix``
        (I_mode x R): payload grows by a factor of R, coordinates that
        coincide after dropping the mode are summed."""
        if orig_mode not in self.modes:
            raise ValueError(f"mode {orig_mode} already contracted")
        axis = self.modes.index(orig_mode)
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != self.shape[axis]:
            raise ValueError(
                f"matrix must be ({self.shape[axis]}, R), got {matrix.shape}")
        r_new = matrix.shape[1]
        # payload outer product: (n, P) x (n, R) -> (n, P * R)
        if self.n:
            rows = matrix[self.indices[:, axis]]
            payload = (self.values[:, :, None] * rows[:, None, :]).reshape(
                self.n, -1)
        else:
            payload = np.zeros((0, self.values.shape[1] * r_new))
        keep = [a for a in range(len(self.modes)) if a != axis]
        kept = self.indices[:, keep]
        new_modes = tuple(m for m in self.modes if m != orig_mode)
        new_shape = tuple(self.shape[a] for a in keep)

        if kept.shape[1] and self.n > 1:
            order = np.lexsort(tuple(kept[:, c]
                                     for c in reversed(range(kept.shape[1]))))
            kept = kept[order]
            payload = payload[order]
            changed = np.any(kept[1:] != kept[:-1], axis=1)
            group = np.concatenate([[0], np.cumsum(changed)])
            first = np.concatenate([[0], np.flatnonzero(changed) + 1])
        else:
            group = np.zeros(self.n, dtype=np.int64)
            first = (np.array([0]) if self.n
                     else np.empty(0, dtype=np.int64))
        ngroups = int(group[-1]) + 1 if self.n else 0
        summed = np.zeros((ngroups, payload.shape[1]))
        np.add.at(summed, group, payload)
        return SemiSparse(new_shape, new_modes, kept[first], summed,
                          ranks=self.ranks + (r_new,),
                          rank_modes=self.rank_modes + (orig_mode,))

    def to_dense_matrix(self) -> np.ndarray:
        """For a single remaining sparse mode: the (I_mode, prod ranks)
        dense matrix (the mode-n unfolding HOOI feeds to the SVD)."""
        if len(self.modes) != 1:
            raise ValueError(
                f"{len(self.modes)} sparse modes remain; contract first")
        out = np.zeros((self.shape[0], self.values.shape[1]))
        np.add.at(out, self.indices[:, 0], self.values)
        return out


def ttm_chain(coo: CooTensor, factors: Sequence[np.ndarray],
              skip_mode: int,
              order: Optional[List[int]] = None) -> SemiSparse:
    """Compute ``X x_{m != skip} factors[m]`` as a semi-sparse tensor.

    ``factors[m]`` is (I_m x R_m); the contraction uses it directly (pass
    transposed-factor semantics by transposing at the call site — HOOI
    contracts with ``U_m`` since ``X x_m U_m^T`` unfolds to ``U_m^T X_(m)``,
    i.e. payload rows ``U_m[i_m, :]``, which is what :meth:`SemiSparse
    .contract` gathers).

    ``order`` optionally fixes the contraction order; by default modes are
    contracted smallest-rank-first, which keeps the intermediate payload
    small.
    """
    skip_mode = check_mode(skip_mode, coo.nmodes)
    if len(factors) != coo.nmodes:
        raise ValueError(f"expected {coo.nmodes} factors, got {len(factors)}")
    todo = [m for m in range(coo.nmodes) if m != skip_mode]
    if order is not None:
        order = [check_mode(m, coo.nmodes) for m in order]
        if sorted(order) != sorted(todo):
            raise ValueError(
                f"order must cover modes {todo}, got {order}")
        todo = order
    else:
        todo.sort(key=lambda m: np.asarray(factors[m]).shape[1])
    semi = SemiSparse.from_coo(coo)
    for m in todo:
        semi = semi.contract(m, factors[m])
    return semi
