"""Sparse Tucker decomposition substrate (HOOI over sparse TTM chains).

HiCOO's reference library (ParTI!) pairs the format with both CP and
Tucker solvers; this subpackage provides the Tucker side: semi-sparse TTM
chains and the HOOI algorithm with orthonormal factors and a dense core.
"""

from .hooi import HooiResult, TuckerTensor, hooi  # noqa: F401
from .ttm_chain import SemiSparse, ttm_chain  # noqa: F401

__all__ = ["HooiResult", "TuckerTensor", "hooi", "SemiSparse", "ttm_chain"]
