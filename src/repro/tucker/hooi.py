"""Sparse Tucker decomposition via HOOI (higher-order orthogonal iteration).

Approximates a sparse tensor as ``X ~ G x_1 U_1 x_2 ... x_N U_N`` with a
small dense core ``G`` and orthonormal factors ``U_m`` (I_m x R_m).  Each
HOOI subiteration computes the TTM chain ``Y_n = X x_{m != n} U_m^T``
(sparse, via :mod:`repro.tucker.ttm_chain`), takes the R_n leading left
singular vectors of ``Y_n``'s unfolding as the new ``U_n``, and at the end
contracts the last chain once more to obtain the core.

The fit uses the orthonormal-factor identity
``||X - G x {U}||^2 = ||X||^2 - ||G||^2`` — no residual is ever formed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..formats.base import SparseTensorFormat
from ..formats.coo import CooTensor
from .ttm_chain import ttm_chain

__all__ = ["TuckerTensor", "HooiResult", "hooi"]


@dataclass
class TuckerTensor:
    """Dense core + orthonormal factor matrices."""

    core: np.ndarray
    factors: List[np.ndarray]

    def __post_init__(self):
        self.core = np.asarray(self.core, dtype=np.float64)
        self.factors = [np.asarray(f, dtype=np.float64) for f in self.factors]
        if self.core.ndim != len(self.factors):
            raise ValueError(
                f"core has {self.core.ndim} modes but "
                f"{len(self.factors)} factors given")
        for m, (f, r) in enumerate(zip(self.factors, self.core.shape)):
            if f.ndim != 2 or f.shape[1] != r:
                raise ValueError(
                    f"factor {m} must have {r} columns, got shape {f.shape}")

    @property
    def shape(self) -> tuple:
        return tuple(f.shape[0] for f in self.factors)

    @property
    def ranks(self) -> tuple:
        return self.core.shape

    def full(self) -> np.ndarray:
        """Densify (small tensors only)."""
        size = int(np.prod(self.shape))
        if size > 50_000_000:
            raise MemoryError(f"refusing to densify {size} elements")
        out = self.core
        for mode, f in enumerate(self.factors):
            out = np.moveaxis(
                np.tensordot(f, out, axes=(1, mode)), 0, mode)
        return out

    def norm(self) -> float:
        """With orthonormal factors, ``||X_approx|| = ||core||``."""
        return float(np.linalg.norm(self.core))

    def fit(self, tensor: CooTensor, tensor_norm: Optional[float] = None) -> float:
        """1 - ||X - approx|| / ||X|| using the core-norm identity."""
        xnorm = tensor.norm() if tensor_norm is None else tensor_norm
        if xnorm == 0:
            return 1.0 if self.norm() == 0 else 0.0
        resid_sq = max(xnorm**2 - self.norm()**2, 0.0)
        return 1.0 - np.sqrt(resid_sq) / xnorm


@dataclass
class HooiResult:
    tucker: TuckerTensor
    fits: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    total_seconds: float = 0.0

    @property
    def final_fit(self) -> float:
        return self.fits[-1] if self.fits else 0.0


def _leading_left_singular(matrix: np.ndarray, rank: int,
                           rng: np.random.Generator) -> np.ndarray:
    """R leading left singular vectors, padded with random orthonormal
    columns when the matrix has deficient rank."""
    u, s, _ = np.linalg.svd(matrix, full_matrices=False)
    u = u[:, :rank]
    if u.shape[1] < rank:
        pad = rng.standard_normal((u.shape[0], rank - u.shape[1]))
        pad -= u @ (u.T @ pad)
        q, _ = np.linalg.qr(pad)
        u = np.hstack([u, q[:, : rank - u.shape[1]]])
    return u


def hooi(tensor: SparseTensorFormat, ranks: Sequence[int], *,
         maxiters: int = 25, tol: float = 1e-5,
         seed: Optional[int] = None,
         init: Optional[List[np.ndarray]] = None) -> HooiResult:
    """Rank-``ranks`` Tucker decomposition of a sparse tensor by HOOI.

    Parameters
    ----------
    tensor : any sparse format (converted to COO once for the TTM chains).
    ranks : target core size per mode; each must not exceed the mode size.
    maxiters / tol : outer iteration cap and fit-change threshold.
    seed / init : random-init seed, or explicit (orthonormalized) factors.
    """
    coo = tensor.to_coo()
    nmodes = coo.nmodes
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != nmodes:
        raise ValueError(f"need {nmodes} ranks, got {len(ranks)}")
    if any(r < 1 for r in ranks):
        raise ValueError(f"ranks must be positive, got {ranks}")
    if any(r > s for r, s in zip(ranks, coo.shape)):
        raise ValueError(f"ranks {ranks} exceed tensor shape {coo.shape}")
    if maxiters < 1:
        raise ValueError(f"maxiters must be positive, got {maxiters}")

    rng = np.random.default_rng(seed)
    if init is None:
        factors = []
        for dim, rank in zip(coo.shape, ranks):
            q, _ = np.linalg.qr(rng.standard_normal((dim, rank)))
            factors.append(q)
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init]
        if len(factors) != nmodes:
            raise ValueError(f"need {nmodes} init factors")
        for m, (f, r) in enumerate(zip(factors, ranks)):
            if f.shape != (coo.shape[m], r):
                raise ValueError(
                    f"init factor {m} must be {(coo.shape[m], r)}, "
                    f"got {f.shape}")
            q, _ = np.linalg.qr(f)
            factors[m] = q

    xnorm = coo.norm()
    result = HooiResult(tucker=TuckerTensor(np.zeros(ranks), factors))
    t0 = time.perf_counter()
    prev_fit = -np.inf
    core = np.zeros(ranks)

    for it in range(maxiters):
        for mode in range(nmodes):
            semi = ttm_chain(coo, factors, skip_mode=mode)
            unfolding = semi.to_dense_matrix()  # (I_mode, prod other ranks)
            factors[mode] = _leading_left_singular(unfolding, ranks[mode], rng)
            if mode == nmodes - 1:
                # core = U_N^T @ Y_N, reshaped into natural mode order
                core = _assemble_core(semi, factors[mode], ranks, mode)
        kt = TuckerTensor(core, [f.copy() for f in factors])
        fit = kt.fit(coo, tensor_norm=xnorm)
        result.fits.append(fit)
        result.iterations = it + 1
        if it > 0 and abs(fit - prev_fit) < tol:
            result.converged = True
            break
        prev_fit = fit

    result.total_seconds = time.perf_counter() - t0
    result.tucker = TuckerTensor(core, factors)
    return result


def _assemble_core(semi, factor: np.ndarray, ranks, mode: int) -> np.ndarray:
    """Contract the remaining sparse mode with ``factor`` and reorder the
    rank axes of the TTM chain into natural mode order."""
    flat = factor.T @ semi.to_dense_matrix()  # (R_mode, prod other ranks)
    # rank axes of the chain, skipping the leading dummy axis
    chain_modes = [m for m in semi.rank_modes if m is not None]
    chain_ranks = [r for r, m in zip(semi.ranks, semi.rank_modes)
                   if m is not None]
    core = flat.reshape([ranks[mode]] + chain_ranks)
    axis_modes = [mode] + chain_modes
    perm = [axis_modes.index(m) for m in range(len(ranks))]
    return np.transpose(core, perm)
