"""Argument-validation helpers shared across the library.

Kernels validate their inputs once at the boundary and then run unchecked
vectorized code, per the usual NumPy performance discipline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "check_indices",
    "check_shape",
    "check_mode",
    "check_factors",
    "as_index_array",
]


def check_shape(shape: Sequence[int]) -> tuple:
    """Validate a tensor shape: a non-empty sequence of positive ints."""
    shape = tuple(int(s) for s in shape)
    if len(shape) == 0:
        raise ValueError("tensor shape must have at least one mode")
    if any(s <= 0 for s in shape):
        raise ValueError(f"all mode sizes must be positive, got {shape}")
    return shape


def as_index_array(indices, nmodes: int | None = None) -> np.ndarray:
    """Coerce ``indices`` to a 2-D (nnz, nmodes) int64 array."""
    arr = np.asarray(indices)
    if arr.ndim == 1 and arr.size == 0:
        arr = arr.reshape(0, nmodes if nmodes else 1)
    if arr.ndim != 2:
        raise ValueError(f"indices must be 2-D (nnz, nmodes), got shape {arr.shape}")
    if nmodes is not None and arr.shape[1] != nmodes:
        raise ValueError(f"indices have {arr.shape[1]} modes, expected {nmodes}")
    if not np.issubdtype(arr.dtype, np.integer):
        if arr.size and not np.all(arr == np.floor(arr)):
            raise TypeError("indices must be integers")
        arr = arr.astype(np.int64)
    return arr.astype(np.int64, copy=False)


def check_indices(indices: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Validate coordinates against ``shape``; returns an int64 copy/view."""
    shape = check_shape(shape)
    arr = as_index_array(indices, nmodes=len(shape))
    if arr.size:
        if arr.min() < 0:
            raise ValueError("indices must be non-negative")
        maxima = arr.max(axis=0)
        for mode, (hi, dim) in enumerate(zip(maxima, shape)):
            if hi >= dim:
                raise ValueError(
                    f"index {int(hi)} out of range for mode {mode} with size {dim}"
                )
    return arr


def check_mode(mode: int, nmodes: int) -> int:
    """Validate a mode number, supporting negative indexing like NumPy axes."""
    mode = int(mode)
    if not -nmodes <= mode < nmodes:
        raise ValueError(f"mode {mode} out of range for a {nmodes}-mode tensor")
    return mode % nmodes


def check_factors(factors: Sequence[np.ndarray], shape: Sequence[int]) -> list:
    """Validate a list of factor matrices against a tensor shape.

    Every factor must be 2-D with matching mode size, and all must share a
    common rank (number of columns).
    """
    shape = check_shape(shape)
    if len(factors) != len(shape):
        raise ValueError(f"expected {len(shape)} factor matrices, got {len(factors)}")
    out = []
    rank = None
    for mode, (factor, dim) in enumerate(zip(factors, shape)):
        f = np.asarray(factor, dtype=np.float64)
        if f.ndim != 2:
            raise ValueError(f"factor {mode} must be 2-D, got shape {f.shape}")
        if f.shape[0] != dim:
            raise ValueError(
                f"factor {mode} has {f.shape[0]} rows, expected {dim}"
            )
        if rank is None:
            rank = f.shape[1]
        elif f.shape[1] != rank:
            raise ValueError(
                f"factor {mode} has rank {f.shape[1]}, expected {rank}"
            )
        out.append(f)
    return out
