"""Logging setup shared by examples and benchmarks."""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Package logger with a one-time stream-handler setup."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
    return logger
