"""Logging setup shared by examples and benchmarks."""

from __future__ import annotations

import logging
import os

__all__ = ["get_logger"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"

_ENV_VAR = "REPRO_LOG_LEVEL"


def _resolve_level(level) -> int:
    """Accept an int, a numeric string, or a level name ("DEBUG")."""
    if isinstance(level, int):
        return level
    text = str(level).strip().upper()
    if text.isdigit():
        return int(text)
    resolved = logging.getLevelName(text)
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def get_logger(name: str = "repro", level=None) -> logging.Logger:
    """Package logger with a one-time stream-handler setup.

    ``level`` is honored on *every* call (it used to be applied only when
    the handler was first installed): pass an int, a name ("DEBUG"), or
    ``None`` to leave the current level alone (INFO on first setup).  The
    ``REPRO_LOG_LEVEL`` environment variable overrides both.
    """
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    env = os.environ.get(_ENV_VAR)
    if env:
        logger.setLevel(_resolve_level(env))
    elif level is not None:
        logger.setLevel(_resolve_level(level))
    return logger
