"""Bit-manipulation primitives used by the HiCOO format.

The central primitive is the N-dimensional Morton (Z-order) code: the bits of
N coordinates are interleaved so that sorting by the code groups points that
are close in *all* modes, which is what lets HiCOO pack nonzeros into dense
index blocks.  Codes wider than 64 bits are represented as multiple 64-bit
words (most-significant word first) so that ``numpy.lexsort`` can order them.

Interleaving is done with the classic "magic number" shift-mask sequence
(parallel bit deposit/extract): spreading the ``nbits`` bits of one
coordinate to stride ``nmodes`` takes O(log nbits) vectorized passes instead
of the O(nbits) per-bit passes of the textbook loop.  The per-step masks are
derived once per ``(nmodes, nbits)`` pair and cached: with chunks of ``c``
source bits laid out as ``pos(i) = (i // c) * c * nmodes + (i % c)``, halving
``c`` moves the upper half of every chunk left by ``(c/2) * (nmodes - 1)``,
which doubling/halving walks between the packed layout (``c >= nbits``) and
the fully interleaved one (``c = 1``).
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = [
    "bits_for",
    "morton_encode",
    "morton_decode",
    "morton_key64",
    "morton_sort_order",
    "stable_argsort_u64",
    "pack_key64",
    "shift_right_words",
    "interleave_words",
    "alto_widths",
    "alto_positions",
    "alto_encode",
    "alto_decode",
    "alto_extract_mode",
]

_U64 = np.uint64


def bits_for(value: int) -> int:
    """Number of bits needed to represent ``value`` (at least 1).

    >>> bits_for(0), bits_for(1), bits_for(255), bits_for(256)
    (1, 1, 8, 9)
    """
    if value < 0:
        raise ValueError(f"bits_for requires a non-negative value, got {value}")
    return max(1, int(value).bit_length())


def _check_coords(coords: np.ndarray) -> np.ndarray:
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise ValueError(f"coords must be 2-D (nmodes, npoints), got shape {coords.shape}")
    if coords.size and coords.min() < 0:
        raise ValueError("coords must be non-negative")
    if coords.dtype == np.int64:
        # same itemsize and value range (non-negative, checked above): a
        # free reinterpreting view instead of an astype copy of the whole
        # index array.
        return coords.view(np.uint64)
    return coords.astype(np.uint64, copy=False)


# ----------------------------------------------------------------------
# magic-number spread/compress step tables
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def _layout_mask(nmodes: int, nbits: int, chunk: int) -> int:
    """Mask of the chunk-``chunk`` layout: source bit ``i`` sits at position
    ``(i // chunk) * chunk * nmodes + (i % chunk)``."""
    mask = 0
    for i in range(nbits):
        mask |= 1 << ((i // chunk) * chunk * nmodes + (i % chunk))
    return mask


@functools.lru_cache(maxsize=None)
def _spread_ops(nmodes: int, nbits: int):
    """(shift, mask) steps taking ``nbits`` packed bits to stride ``nmodes``."""
    if nmodes == 1 or nbits == 1:
        return ()
    chunk = 1
    while chunk < nbits:
        chunk <<= 1
    ops = []
    while chunk > 1:
        half = chunk >> 1
        ops.append((_U64(half * (nmodes - 1)),
                    _U64(_layout_mask(nmodes, nbits, half))))
        chunk = half
    return tuple(ops)


@functools.lru_cache(maxsize=None)
def _compress_ops(nmodes: int, nbits: int):
    """Inverse steps: gather stride-``nmodes`` bits back to packed form."""
    if nmodes == 1 or nbits == 1:
        return ()
    chunks = []
    c = 1
    while c < nbits:
        c <<= 1
        chunks.append(c)
    return tuple((_U64((c >> 1) * (nmodes - 1)),
                  _U64(_layout_mask(nmodes, nbits, c))) for c in chunks)


@functools.lru_cache(maxsize=None)
def _stride_mask(nmodes: int, nbits: int) -> np.uint64:
    """Mask selecting bits ``i * nmodes`` for ``i`` in [0, nbits)."""
    return _U64(_layout_mask(nmodes, nbits, 1))


def _spread_inplace(x: np.ndarray, nmodes: int, nbits: int,
                    tmp: np.ndarray) -> np.ndarray:
    """Scatter the low ``nbits`` bits of ``x`` to stride ``nmodes``, in place.

    ``x`` must be a freshly-owned uint64 array with no garbage above bit
    ``nbits``; ``tmp`` is same-shape scratch.
    """
    for shift, mask in _spread_ops(nmodes, nbits):
        np.left_shift(x, shift, out=tmp)
        np.bitwise_or(x, tmp, out=x)
        np.bitwise_and(x, mask, out=x)
    return x


def _compress_inplace(x: np.ndarray, nmodes: int, nbits: int,
                      tmp: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_inplace`; ``x`` must be stride-masked."""
    for shift, mask in _compress_ops(nmodes, nbits):
        np.right_shift(x, shift, out=tmp)
        np.bitwise_or(x, tmp, out=x)
        np.bitwise_and(x, mask, out=x)
    return x


def _segment(lo_bit: int, hi_bit: int, mode: int, nmodes: int, nbits: int):
    """Source-bit range [b_lo, b_hi) of ``mode`` whose interleaved output
    bits ``b * nmodes + mode`` land inside [lo_bit, hi_bit)."""
    b_lo = max(0, (lo_bit - mode + nmodes - 1) // nmodes)
    b_hi = min(nbits, (hi_bit - mode + nmodes - 1) // nmodes)
    return b_lo, b_hi


def morton_encode(coords: np.ndarray, nbits: int) -> np.ndarray:
    """Interleave the low ``nbits`` bits of each of N coordinate rows.

    Parameters
    ----------
    coords : (N, M) integer array of non-negative coordinates.
    nbits : number of bits taken from each coordinate.  Every coordinate must
        fit in ``nbits`` bits.

    Returns
    -------
    (W, M) uint64 array of code words, most-significant word first, where
    ``W = ceil(N * nbits / 64)``.  Bit ``b*N + n`` (counting from the LSB of
    the concatenated stream) is bit ``b`` of ``coords[n]``; mode 0 therefore
    varies fastest, matching the usual Z-order convention.
    """
    coords = _check_coords(coords)
    nmodes, npoints = coords.shape
    if nbits < 1 or nbits > 64:
        raise ValueError(f"nbits must be in [1, 64], got {nbits}")
    if coords.size and int(coords.max()).bit_length() > nbits:
        raise ValueError(f"coordinate {int(coords.max())} does not fit in {nbits} bits")

    total_bits = nmodes * nbits
    nwords = (total_bits + 63) // 64
    words = np.zeros((nwords, npoints), dtype=np.uint64)
    seg = np.empty(npoints, dtype=np.uint64)
    tmp = np.empty(npoints, dtype=np.uint64)
    for w in range(nwords):
        lo_bit = 64 * w
        hi_bit = min(lo_bit + 64, total_bits)
        row = nwords - 1 - w
        for m in range(nmodes):
            b_lo, b_hi = _segment(lo_bit, hi_bit, m, nmodes, nbits)
            if b_hi <= b_lo:
                continue
            seg_bits = b_hi - b_lo
            if b_lo == 0 and b_hi == nbits:
                # whole coordinate fits this word; the overflow check above
                # already guarantees no garbage bits, so skip shift + mask
                np.copyto(seg, coords[m])
            else:
                np.right_shift(coords[m], _U64(b_lo), out=seg)
                if seg_bits < 64:
                    np.bitwise_and(seg, _U64((1 << seg_bits) - 1), out=seg)
            _spread_inplace(seg, nmodes, seg_bits, tmp)
            shift = b_lo * nmodes + m - lo_bit
            if shift:
                np.left_shift(seg, _U64(shift), out=seg)
            np.bitwise_or(words[row], seg, out=words[row])
    return words


def morton_decode(words: np.ndarray, nmodes: int, nbits: int) -> np.ndarray:
    """Inverse of :func:`morton_encode`.

    Parameters
    ----------
    words : (W, M) uint64 code words as produced by ``morton_encode``.
    nmodes : number of interleaved coordinates.
    nbits : bits per coordinate used during encoding.

    Returns
    -------
    (nmodes, M) uint64 coordinate array.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"words must be 2-D, got shape {words.shape}")
    nwords, npoints = words.shape
    total_bits = nmodes * nbits
    expect = (total_bits + 63) // 64
    if nwords != expect:
        raise ValueError(f"expected {expect} words for {nmodes} modes x {nbits} bits, got {nwords}")
    coords = np.zeros((nmodes, npoints), dtype=np.uint64)
    seg = np.empty(npoints, dtype=np.uint64)
    tmp = np.empty(npoints, dtype=np.uint64)
    for w in range(nwords):
        lo_bit = 64 * w
        hi_bit = min(lo_bit + 64, total_bits)
        row = nwords - 1 - w
        for m in range(nmodes):
            b_lo, b_hi = _segment(lo_bit, hi_bit, m, nmodes, nbits)
            if b_hi <= b_lo:
                continue
            seg_bits = b_hi - b_lo
            shift = b_lo * nmodes + m - lo_bit
            np.right_shift(words[row], _U64(shift), out=seg)
            np.bitwise_and(seg, _stride_mask(nmodes, seg_bits), out=seg)
            _compress_inplace(seg, nmodes, seg_bits, tmp)
            if b_lo:
                np.left_shift(seg, _U64(b_lo), out=seg)
            np.bitwise_or(coords[m], seg, out=coords[m])
    return coords


def morton_key64(coords: np.ndarray, nbits: int) -> np.ndarray:
    """Single-word Morton code: the fast path when ``N * nbits <= 64``.

    Returns a flat (M,) uint64 key array that a plain ``np.argsort`` can
    order — one radix sort instead of a multi-key ``lexsort``.
    """
    coords = _check_coords(coords)
    if coords.shape[0] * nbits > 64:
        raise ValueError(
            f"{coords.shape[0]} modes x {nbits} bits exceeds one 64-bit word")
    return morton_encode(coords, nbits)[0]


def morton_sort_order(coords: np.ndarray, nbits: int) -> np.ndarray:
    """Permutation that sorts points into Z-Morton order.

    Uses a stable sort so that points with equal codes keep their input
    order.  When the code fits one word (``N * nbits <= 64``) this is a
    single stable uint64 key sort; otherwise a multi-word ``lexsort``.
    """
    coords = _check_coords(coords)
    words = morton_encode(coords, nbits)
    if len(words) == 1:
        return stable_argsort_u64(words[0])
    # lexsort treats the *last* key as primary; words[0] is most significant.
    return np.lexsort(words[::-1])


def stable_argsort_u64(keys: np.ndarray) -> np.ndarray:
    """Stable argsort of a uint64 key array.

    When the keys leave room for a position field (``key_bits + pos_bits <=
    64``), sorting ``(key << pos_bits) | position`` with numpy's default
    (unstable but much faster) sort and masking the positions back out
    yields the stable permutation directly — the appended position breaks
    every tie in input order.  Otherwise falls back to
    ``np.argsort(kind="stable")``.
    """
    n = len(keys)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    key_bits = bits_for(int(keys.max()))
    pos_bits = bits_for(n - 1)
    if key_bits + pos_bits <= 64:
        combined = keys << _U64(pos_bits)
        combined |= np.arange(n, dtype=np.uint64)
        combined.sort()
        np.bitwise_and(combined, _U64((1 << pos_bits) - 1), out=combined)
        return combined.astype(np.int64)
    return np.argsort(keys, kind="stable")


def pack_key64(columns, widths) -> np.ndarray:
    """Concatenate integer columns into one uint64 sort key.

    ``columns[0]`` occupies the most significant bits, so sorting the packed
    key reproduces a lexicographic sort with ``columns[0]`` as the primary
    key.  Every column must fit its declared bit ``width`` and the widths
    must sum to at most 64.
    """
    columns = list(columns)
    widths = [int(w) for w in widths]
    if len(columns) != len(widths):
        raise ValueError("need one width per column")
    total = sum(widths)
    if total > 64:
        raise ValueError(f"packed key needs {total} bits (> 64)")
    if any(w < 1 for w in widths):
        raise ValueError("column widths must be positive")
    key = None
    shift = total
    for col, width in zip(columns, widths):
        col = np.asarray(col)
        if col.dtype == np.int64:
            col = col.view(np.uint64)
        else:
            col = col.astype(np.uint64, copy=False)
        if col.size and int(col.max()).bit_length() > width:
            raise ValueError(
                f"column value {int(col.max())} does not fit in {width} bits")
        shift -= width
        if key is None:
            key = col << _U64(shift) if shift else col.copy()
        elif shift:
            key |= col << _U64(shift)
        else:
            key |= col
    if key is None:
        raise ValueError("pack_key64 needs at least one column")
    return key


def shift_right_words(words: np.ndarray, nbits: int) -> np.ndarray:
    """Right-shift a multi-word (W, M) msb-first code array by ``nbits``.

    Returns the (W', M) words of ``code >> nbits`` with exhausted leading
    words dropped (at least one word is always returned).
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"words must be 2-D, got shape {words.shape}")
    if nbits < 0:
        raise ValueError("shift must be non-negative")
    nwords, npoints = words.shape
    drop, rem = divmod(nbits, 64)
    if drop >= nwords:
        return np.zeros((1, npoints), dtype=np.uint64)
    kept = words[:nwords - drop]
    if rem == 0:
        return kept.copy()
    out = np.empty_like(kept)
    out[0] = kept[0] >> _U64(rem)
    carry = _U64(64 - rem)
    for i in range(1, len(kept)):
        out[i] = (kept[i] >> _U64(rem)) | (kept[i - 1] << carry)
    return out


def interleave_words(high: np.ndarray, low: np.ndarray) -> np.ndarray:
    """Stack two key arrays into a (2, M) lexsort-ready key, high first."""
    high = np.asarray(high, dtype=np.uint64)
    low = np.asarray(low, dtype=np.uint64)
    if high.shape != low.shape:
        raise ValueError("key arrays must have the same shape")
    return np.stack([high, low])


# ----------------------------------------------------------------------
# ALTO adaptive linearization: per-mode bit widths, round-robin layout
# ----------------------------------------------------------------------
def alto_widths(shape) -> tuple:
    """Per-mode bit widths sized to the actual extents (ALTO's adaptive
    allocation): mode ``m`` gets ``bits_for(shape[m] - 1)`` bits, exactly
    enough to address its largest index.

    >>> alto_widths((1000, 50, 3))
    (10, 6, 2)
    """
    widths = []
    for s in shape:
        s = int(s)
        if s < 1:
            raise ValueError(f"extents must be positive, got {s}")
        widths.append(bits_for(s - 1))
    return tuple(widths)


@functools.lru_cache(maxsize=None)
def alto_positions(widths: tuple) -> tuple:
    """Global bit position of every coordinate bit under ALTO's layout.

    Bit levels are assigned round-robin starting from the LSB: level ``b``
    visits every mode that still has a bit ``b`` (``widths[m] > b``), so
    small modes drop out of the rotation once exhausted and the remaining
    modes pack tighter — unlike Morton codes, no position is wasted on
    extents that are not powers of two of each other.

    Returns ``positions`` with ``positions[m][b]`` = global bit (from the
    LSB of the concatenated stream) of bit ``b`` of coordinate ``m``.  For
    uniform widths this reduces exactly to the Morton layout
    ``b * nmodes + m``.
    """
    widths = tuple(int(w) for w in widths)
    if any(w < 1 for w in widths):
        raise ValueError("bit widths must be positive")
    positions = [[] for _ in widths]
    pos = 0
    for b in range(max(widths)):
        for m, w in enumerate(widths):
            if b < w:
                positions[m].append(pos)
                pos += 1
    return tuple(tuple(p) for p in positions)


def _check_alto_args(coords: np.ndarray, widths) -> tuple:
    widths = tuple(int(w) for w in widths)
    if len(widths) != coords.shape[0]:
        raise ValueError(
            f"need one width per mode: {len(widths)} widths for "
            f"{coords.shape[0]} coordinate rows")
    for m, w in enumerate(widths):
        if w < 1 or w > 64:
            raise ValueError(f"mode {m}: width must be in [1, 64], got {w}")
        if coords.shape[1] and int(coords[m].max()).bit_length() > w:
            raise ValueError(
                f"mode {m}: coordinate {int(coords[m].max())} does not fit "
                f"in {w} bits")
    return widths


def alto_encode(coords: np.ndarray, widths) -> np.ndarray:
    """Adaptively interleave coordinate bits under the ALTO layout.

    Parameters
    ----------
    coords : (N, M) integer array of non-negative coordinates.
    widths : per-mode bit counts (usually :func:`alto_widths` of the shape);
        every coordinate must fit its mode's width.

    Returns
    -------
    (W, M) uint64 words, most-significant word first, with
    ``W = ceil(sum(widths) / 64)`` — the same multi-word convention as
    :func:`morton_encode`, so ``stable_argsort_u64`` / ``lexsort`` order the
    codes identically.  Uniform widths delegate to the magic-number Morton
    fast path (the layouts coincide); mixed widths take one vectorized
    mask/shift/or pass per coordinate bit.
    """
    coords = _check_coords(coords)
    widths = _check_alto_args(coords, widths)
    if len(set(widths)) == 1:
        return morton_encode(coords, widths[0])
    nmodes, npoints = coords.shape
    total_bits = sum(widths)
    nwords = (total_bits + 63) // 64
    words = np.zeros((nwords, npoints), dtype=np.uint64)
    tmp = np.empty(npoints, dtype=np.uint64)
    for m, plist in enumerate(alto_positions(widths)):
        for b, pos in enumerate(plist):
            row = nwords - 1 - pos // 64
            np.right_shift(coords[m], _U64(b), out=tmp)
            np.bitwise_and(tmp, _U64(1), out=tmp)
            shift = pos % 64
            if shift:
                np.left_shift(tmp, _U64(shift), out=tmp)
            np.bitwise_or(words[row], tmp, out=words[row])
    return words


def alto_extract_mode(words: np.ndarray, widths, mode: int) -> np.ndarray:
    """Delinearize a single mode from ALTO code words.

    Returns the (M,) uint64 coordinates of ``mode`` — the per-mode masks are
    what :class:`~repro.formats.alto.AltoTensor` caches, and extracting only
    the target mode is all MTTKRP's scatter needs.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"words must be 2-D, got shape {words.shape}")
    widths = tuple(int(w) for w in widths)
    nwords, npoints = words.shape
    total_bits = sum(widths)
    expect = (total_bits + 63) // 64
    if nwords != expect:
        raise ValueError(
            f"expected {expect} words for widths {widths}, got {nwords}")
    if not 0 <= mode < len(widths):
        raise ValueError(f"mode {mode} out of range for {len(widths)} widths")
    out = np.zeros(npoints, dtype=np.uint64)
    tmp = np.empty(npoints, dtype=np.uint64)
    for b, pos in enumerate(alto_positions(widths)[mode]):
        row = nwords - 1 - pos // 64
        shift = pos % 64
        if shift:
            np.right_shift(words[row], _U64(shift), out=tmp)
        else:
            np.copyto(tmp, words[row])
        np.bitwise_and(tmp, _U64(1), out=tmp)
        if b:
            np.left_shift(tmp, _U64(b), out=tmp)
        np.bitwise_or(out, tmp, out=out)
    return out


def alto_decode(words: np.ndarray, widths) -> np.ndarray:
    """Inverse of :func:`alto_encode`: (N, M) uint64 coordinates.

    Round-trips exactly for any extents (the layout is a bijection on the
    declared widths); uniform widths delegate to the Morton fast path.
    """
    widths = tuple(int(w) for w in widths)
    if len(set(widths)) == 1:
        return morton_decode(words, len(widths), widths[0])
    return np.stack([alto_extract_mode(words, widths, m)
                     for m in range(len(widths))])
