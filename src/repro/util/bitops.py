"""Bit-manipulation primitives used by the HiCOO format.

The central primitive is the N-dimensional Morton (Z-order) code: the bits of
N coordinates are interleaved so that sorting by the code groups points that
are close in *all* modes, which is what lets HiCOO pack nonzeros into dense
index blocks.  Codes wider than 64 bits are represented as multiple 64-bit
words (most-significant word first) so that ``numpy.lexsort`` can order them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bits_for",
    "morton_encode",
    "morton_decode",
    "morton_sort_order",
    "interleave_words",
]


def bits_for(value: int) -> int:
    """Number of bits needed to represent ``value`` (at least 1).

    >>> bits_for(0), bits_for(1), bits_for(255), bits_for(256)
    (1, 1, 8, 9)
    """
    if value < 0:
        raise ValueError(f"bits_for requires a non-negative value, got {value}")
    return max(1, int(value).bit_length())


def _check_coords(coords: np.ndarray) -> np.ndarray:
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise ValueError(f"coords must be 2-D (nmodes, npoints), got shape {coords.shape}")
    if coords.size and coords.min() < 0:
        raise ValueError("coords must be non-negative")
    return coords.astype(np.uint64, copy=False)


def morton_encode(coords: np.ndarray, nbits: int) -> np.ndarray:
    """Interleave the low ``nbits`` bits of each of N coordinate rows.

    Parameters
    ----------
    coords : (N, M) integer array of non-negative coordinates.
    nbits : number of bits taken from each coordinate.  Every coordinate must
        fit in ``nbits`` bits.

    Returns
    -------
    (W, M) uint64 array of code words, most-significant word first, where
    ``W = ceil(N * nbits / 64)``.  Bit ``b*N + n`` (counting from the LSB of
    the concatenated stream) is bit ``b`` of ``coords[n]``; mode 0 therefore
    varies fastest, matching the usual Z-order convention.
    """
    coords = _check_coords(coords)
    nmodes, npoints = coords.shape
    if nbits < 1 or nbits > 64:
        raise ValueError(f"nbits must be in [1, 64], got {nbits}")
    limit = np.uint64(1) << np.uint64(nbits)
    if coords.size and coords.max() >= limit:
        raise ValueError(f"coordinate {int(coords.max())} does not fit in {nbits} bits")

    total_bits = nmodes * nbits
    nwords = (total_bits + 63) // 64
    words = np.zeros((nwords, npoints), dtype=np.uint64)
    for bit in range(nbits):
        for mode in range(nmodes):
            out_bit = bit * nmodes + mode
            word = nwords - 1 - (out_bit // 64)
            shift = np.uint64(out_bit % 64)
            src = (coords[mode] >> np.uint64(bit)) & np.uint64(1)
            words[word] |= src << shift
    return words


def morton_decode(words: np.ndarray, nmodes: int, nbits: int) -> np.ndarray:
    """Inverse of :func:`morton_encode`.

    Parameters
    ----------
    words : (W, M) uint64 code words as produced by ``morton_encode``.
    nmodes : number of interleaved coordinates.
    nbits : bits per coordinate used during encoding.

    Returns
    -------
    (nmodes, M) uint64 coordinate array.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"words must be 2-D, got shape {words.shape}")
    nwords, npoints = words.shape
    expect = (nmodes * nbits + 63) // 64
    if nwords != expect:
        raise ValueError(f"expected {expect} words for {nmodes} modes x {nbits} bits, got {nwords}")
    coords = np.zeros((nmodes, npoints), dtype=np.uint64)
    for bit in range(nbits):
        for mode in range(nmodes):
            in_bit = bit * nmodes + mode
            word = nwords - 1 - (in_bit // 64)
            shift = np.uint64(in_bit % 64)
            src = (words[word] >> shift) & np.uint64(1)
            coords[mode] |= src << np.uint64(bit)
    return coords


def morton_sort_order(coords: np.ndarray, nbits: int) -> np.ndarray:
    """Permutation that sorts points into Z-Morton order.

    Uses a stable sort so that points with equal codes keep their input order.
    """
    coords = _check_coords(coords)
    words = morton_encode(coords, nbits)
    # lexsort treats the *last* key as primary; words[0] is most significant.
    return np.lexsort(words[::-1])


def interleave_words(high: np.ndarray, low: np.ndarray) -> np.ndarray:
    """Stack two key arrays into a (2, M) lexsort-ready key, high first."""
    high = np.asarray(high, dtype=np.uint64)
    low = np.asarray(low, dtype=np.uint64)
    if high.shape != low.shape:
        raise ValueError("key arrays must have the same shape")
    return np.stack([high, low])
