"""Lightweight timers used by examples and benchmark harnesses."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Timer", "Stopwatch", "timed"]


@dataclass
class Timer:
    """Accumulating timer: repeated start/stop adds to ``elapsed``."""

    elapsed: float = 0.0
    count: int = 0
    _start: float | None = None

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        dt = time.perf_counter() - self._start
        self._start = None
        self.elapsed += dt
        self.count += 1
        return dt

    @property
    def mean(self) -> float:
        return self.elapsed / self.count if self.count else 0.0


@dataclass
class Stopwatch:
    """A named collection of :class:`Timer` objects.

    >>> sw = Stopwatch()
    >>> with sw.section("mttkrp"):
    ...     pass
    >>> sw.timers["mttkrp"].count
    1
    """

    timers: Dict[str, Timer] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[Timer]:
        timer = self.timers.setdefault(name, Timer())
        timer.start()
        try:
            yield timer
        finally:
            timer.stop()

    def report(self) -> List[str]:
        """Human-readable per-section lines, longest section first."""
        rows = sorted(self.timers.items(), key=lambda kv: -kv[1].elapsed)
        return [
            f"{name:<24s} {t.elapsed * 1e3:10.3f} ms  ({t.count} calls)"
            for name, t in rows
        ]


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a one-shot timer.

    >>> with timed() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        if timer._start is not None:
            timer.stop()
