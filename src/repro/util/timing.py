"""Lightweight timers used by examples and benchmark harnesses."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Timer", "Stopwatch", "timed"]


@dataclass
class Timer:
    """Accumulating timer: repeated start/stop adds to ``elapsed``."""

    elapsed: float = 0.0
    count: int = 0
    _start: float | None = None

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        dt = time.perf_counter() - self._start
        self._start = None
        self.elapsed += dt
        self.count += 1
        return dt

    @property
    def mean(self) -> float:
        return self.elapsed / self.count if self.count else 0.0


@dataclass
class Stopwatch:
    """A named collection of :class:`Timer` objects.

    Safe to use from concurrent threads: each :meth:`section` times on a
    private per-call :class:`Timer` (so two threads timing the same name
    never share running state) and merges into the named accumulator under
    a lock on exit.

    >>> sw = Stopwatch()
    >>> with sw.section("mttkrp"):
    ...     pass
    >>> sw.timers["mttkrp"].count
    1
    """

    timers: Dict[str, Timer] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    @contextmanager
    def section(self, name: str) -> Iterator[Timer]:
        local = Timer()
        local.start()
        try:
            yield local
        finally:
            local.stop()
            self.merge(name, local)

    def merge(self, name: str, timer: Timer) -> None:
        """Fold a finished timer into the named accumulator (thread-safe)."""
        with self._lock:
            acc = self.timers.get(name)
            if acc is None:
                acc = self.timers[name] = Timer()
            acc.elapsed += timer.elapsed
            acc.count += timer.count

    def report(self) -> List[str]:
        """Human-readable per-section lines, longest section first."""
        rows = sorted(self.timers.items(), key=lambda kv: -kv[1].elapsed)
        return [
            f"{name:<24s} {t.elapsed * 1e3:10.3f} ms  ({t.count} calls)"
            for name, t in rows
        ]


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a one-shot timer.

    >>> with timed() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        if timer._start is not None:
            timer.stop()
