"""Lexi-order: lexicographic slice reordering to densify HiCOO blocks.

The HiCOO authors' follow-up work ("Efficient and Effective Sparse Tensor
Reordering") renumbers each mode so that slices with similar sparsity
patterns become neighbours; nonzeros then concentrate in fewer blocks
(smaller alpha_b), improving both HiCOO storage and MTTKRP locality.

This implementation performs the practical core of Lexi-order: for one mode
at a time, sort the slice indices lexicographically by their nonzero
patterns (each slice viewed as a sorted list of linearized positions over
the other modes), and iterate over modes for a few rounds so improvements in
one mode sharpen the keys of the next.  Empty slices sort last, preserving
their count.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..formats.coo import CooTensor
from .apply import apply_permutations

__all__ = ["lexi_order", "slice_sort_mode"]


def slice_sort_mode(coo: CooTensor, mode: int) -> np.ndarray:
    """Permutation for one mode: old index -> new index, ordering slices
    lexicographically by their nonzero patterns.

    The key of slice ``i`` is the ascending list of linearized
    other-coordinate positions of its nonzeros.  Slices with identical
    patterns stay adjacent (they will land in the same blocks), and empty
    slices go to the end.
    """
    nmodes = coo.nmodes
    dim = coo.shape[mode]
    rest = [m for m in range(nmodes) if m != mode]
    if not rest:
        return np.arange(dim, dtype=np.int64)

    lin = np.zeros(coo.nnz, dtype=np.int64)
    for m in rest:
        lin = lin * coo.shape[m] + coo.indices[:, m]

    keys: List[list] = [[] for _ in range(dim)]
    for idx, pos in zip(coo.indices[:, mode], lin):
        keys[idx].append(int(pos))
    for k in keys:
        k.sort()

    # order slice ids: non-empty first, lexicographically by pattern
    order = sorted(range(dim), key=lambda i: (not keys[i], keys[i]))
    # order[k] = old slice placed at new position k  ->  perm[old] = new
    perm = np.empty(dim, dtype=np.int64)
    perm[np.asarray(order)] = np.arange(dim)
    return perm


def lexi_order(coo: CooTensor, iterations: int = 2,
               modes: Optional[List[int]] = None) -> List[np.ndarray]:
    """Compute Lexi-order permutations for every mode.

    Parameters
    ----------
    coo : input tensor (not modified).
    iterations : rounds over all modes; each round re-sorts every mode
        using the coordinates produced by the previous round.  2 rounds
        capture most of the benefit (as reported in the reordering paper).
    modes : restrict reordering to these modes (others get identity).

    Returns
    -------
    list of per-mode permutations (old index -> new index), composed over
    all iterations, directly usable with
    :func:`repro.reorder.apply.apply_permutations`.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be positive, got {iterations}")
    active = list(range(coo.nmodes)) if modes is None else [
        m % coo.nmodes for m in modes]
    total = [np.arange(dim, dtype=np.int64) for dim in coo.shape]
    work = coo
    for _ in range(iterations):
        for mode in active:
            perm = slice_sort_mode(work, mode)
            perms = [None] * coo.nmodes
            perms[mode] = perm
            work = apply_permutations(work, perms)
            total[mode] = perm[total[mode]]
    return total
