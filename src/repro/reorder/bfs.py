"""BFS-MCS reordering: graph traversal over the tensor's bipartite
index-fiber structure.

For a target mode ``m``, build the bipartite graph whose left vertices are
the mode-``m`` indices and whose right vertices are the distinct fibers
(combinations of the other modes' indices); a nonzero connects its slice
index to its fiber.  A breadth-first traversal that always expands the
highest-degree unvisited slice first (the maximum-cardinality-search
flavour of the reordering literature) then numbers slices in discovery
order: slices sharing many fibers receive nearby numbers, which is exactly
what packs HiCOO blocks.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np
from scipy import sparse as sp

from ..formats.coo import CooTensor

__all__ = ["bfs_mcs_mode", "bfs_mcs"]


def _bipartite_graph(coo: CooTensor, mode: int) -> sp.csr_matrix:
    """CSR adjacency: rows = mode indices, cols = distinct fibers."""
    rest = [m for m in range(coo.nmodes) if m != mode]
    lin = np.zeros(coo.nnz, dtype=np.int64)
    for m in rest:
        lin = lin * coo.shape[m] + coo.indices[:, m]
    _, fiber_ids = np.unique(lin, return_inverse=True)
    nfibers = int(fiber_ids.max()) + 1 if coo.nnz else 0
    data = np.ones(coo.nnz, dtype=np.int8)
    return sp.csr_matrix(
        (data, (coo.indices[:, mode], fiber_ids)),
        shape=(coo.shape[mode], max(nfibers, 1)),
    )


def bfs_mcs_mode(coo: CooTensor, mode: int) -> np.ndarray:
    """Permutation (old -> new) for one mode by BFS-MCS traversal."""
    dim = coo.shape[mode]
    if coo.nnz == 0 or coo.nmodes == 1:
        return np.arange(dim, dtype=np.int64)
    adj = _bipartite_graph(coo, mode)
    fiber_to_slices = adj.T.tocsr()

    degree = np.asarray(adj.sum(axis=1)).ravel()
    visited = np.zeros(dim, dtype=bool)
    fiber_done = np.zeros(fiber_to_slices.shape[0], dtype=bool)
    order: List[int] = []

    # seeds in decreasing degree; each seed starts a BFS over its component
    seeds = np.argsort(degree, kind="stable")[::-1]
    # priority queue keyed by (-shared_fiber_count, index) per frontier
    for seed in seeds:
        if visited[seed] or degree[seed] == 0:
            continue
        heap = [(-degree[seed], int(seed))]
        while heap:
            _, u = heapq.heappop(heap)
            if visited[u]:
                continue
            visited[u] = True
            order.append(u)
            lo, hi = adj.indptr[u], adj.indptr[u + 1]
            for fiber in adj.indices[lo:hi]:
                if fiber_done[fiber]:
                    continue
                fiber_done[fiber] = True
                flo, fhi = fiber_to_slices.indptr[fiber], fiber_to_slices.indptr[fiber + 1]
                for v in fiber_to_slices.indices[flo:fhi]:
                    if not visited[v]:
                        heapq.heappush(heap, (-int(degree[v]), int(v)))
    # append untouched (empty) slices in original order
    for i in range(dim):
        if not visited[i]:
            order.append(i)

    perm = np.empty(dim, dtype=np.int64)
    perm[np.asarray(order, dtype=np.int64)] = np.arange(dim)
    return perm


def bfs_mcs(coo: CooTensor,
            modes: Optional[List[int]] = None) -> List[np.ndarray]:
    """BFS-MCS permutations for every (or the given) modes; identity for
    the rest.  Compatible with
    :func:`repro.reorder.apply.apply_permutations`."""
    active = set(range(coo.nmodes)) if modes is None else {
        m % coo.nmodes for m in modes}
    return [
        bfs_mcs_mode(coo, m) if m in active
        else np.arange(coo.shape[m], dtype=np.int64)
        for m in range(coo.nmodes)
    ]
