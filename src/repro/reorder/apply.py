"""Applying and validating mode permutations (tensor reorderings).

A *reordering* renumbers the indices of each mode; it changes nothing
mathematically (CP factors can be permuted back) but can dramatically
improve HiCOO's block ratio alpha_b by moving co-occurring indices close
together.  This module applies permutations, inverts them, and measures
their effect.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.hicoo import HicooTensor
from ..formats.coo import CooTensor

__all__ = [
    "apply_permutations",
    "invert_permutation",
    "random_permutations",
    "identity_permutations",
    "alpha_effect",
]


def _check_perm(perm: np.ndarray, dim: int, mode: int) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (dim,):
        raise ValueError(
            f"mode {mode}: permutation has shape {perm.shape}, expected ({dim},)"
        )
    seen = np.zeros(dim, dtype=bool)
    seen[perm] = True
    if not seen.all():
        raise ValueError(f"mode {mode}: not a permutation of 0..{dim - 1}")
    return perm


def apply_permutations(coo: CooTensor,
                       perms: Sequence[Optional[np.ndarray]]) -> CooTensor:
    """Relabel each mode's indices: new_index = perms[m][old_index].

    ``None`` entries leave that mode untouched.  Values are unchanged; only
    coordinates move.
    """
    if len(perms) != coo.nmodes:
        raise ValueError(
            f"need {coo.nmodes} permutations (or None), got {len(perms)}"
        )
    inds = coo.indices.copy()
    for mode, perm in enumerate(perms):
        if perm is None:
            continue
        perm = _check_perm(perm, coo.shape[mode], mode)
        inds[:, mode] = perm[inds[:, mode]]
    return CooTensor(coo.shape, inds, coo.values, sum_duplicates=False)


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[perm[i]] = i``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm))
    return inv


def identity_permutations(shape) -> List[np.ndarray]:
    return [np.arange(dim, dtype=np.int64) for dim in shape]


def random_permutations(shape, seed: Optional[int] = None) -> List[np.ndarray]:
    """Random relabelling — the adversarial baseline that *destroys*
    locality (reordering experiments use it as the worst case)."""
    rng = np.random.default_rng(seed)
    return [rng.permutation(dim).astype(np.int64) for dim in shape]


def alpha_effect(coo: CooTensor, perms: Sequence[Optional[np.ndarray]],
                 block_bits: int = 7) -> dict:
    """Measure a reordering's effect on HiCOO: alpha_b and bytes before vs
    after.  Returns a dict with 'before', 'after' and 'alpha_ratio'
    (after/before; < 1 means the reordering improved blocking)."""
    before = HicooTensor(coo, block_bits=block_bits)
    after = HicooTensor(apply_permutations(coo, perms), block_bits=block_bits)
    return {
        "before": before.geometry(),
        "after": after.geometry(),
        "alpha_ratio": after.block_ratio() / max(before.block_ratio(), 1e-300),
        "bytes_ratio": after.total_bytes() / max(before.total_bytes(), 1),
    }
