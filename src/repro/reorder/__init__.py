"""Tensor reordering — the paper's 'improve alpha_b' extension direction.

Renumbering mode indices never changes the tensor mathematically but can
concentrate nonzeros into fewer HiCOO blocks.  Provided orderings:

* :func:`~repro.reorder.lexi.lexi_order` — lexicographic slice sorting;
* :func:`~repro.reorder.bfs.bfs_mcs` — BFS over the index-fiber bipartite
  graph, highest-degree-first;
* :func:`~repro.reorder.apply.random_permutations` — the locality-destroying
  baseline.
"""

from .apply import (  # noqa: F401
    alpha_effect,
    apply_permutations,
    identity_permutations,
    invert_permutation,
    random_permutations,
)
from .bfs import bfs_mcs, bfs_mcs_mode  # noqa: F401
from .lexi import lexi_order, slice_sort_mode  # noqa: F401

__all__ = [
    "alpha_effect", "apply_permutations", "identity_permutations",
    "invert_permutation", "random_permutations",
    "bfs_mcs", "bfs_mcs_mode", "lexi_order", "slice_sort_mode",
]
