"""repro — a reproduction of *HiCOO: Hierarchical Storage of Sparse Tensors*
(Li, Sun, Vuduc; SC 2018).

Public surface
--------------
Formats
    :class:`~repro.formats.coo.CooTensor`,
    :class:`~repro.formats.csf.CsfTensor`,
    :class:`~repro.formats.dense.DenseTensor`,
    :class:`~repro.core.hicoo.HicooTensor` (the paper's contribution).
Kernels
    :func:`~repro.kernels.mttkrp.mttkrp`,
    :func:`~repro.kernels.mttkrp.mttkrp_parallel`.
Decomposition
    :func:`~repro.cpd.cp_als.cp_als`,
    :class:`~repro.cpd.ktensor.KruskalTensor`.
Data
    :func:`~repro.data.registry.load` (scaled paper-dataset analogs),
    :mod:`~repro.data.synthetic` generators, FROSTT ``.tns`` I/O.
Analysis
    storage comparison, work counting, and the analytic machine model used
    by the benchmark harness to reproduce the paper's figures.

Quick start
-----------
>>> from repro import data, HicooTensor, cp_als
>>> coo = data.load("uber")
>>> hic = HicooTensor(coo, block_bits=7)
>>> result = cp_als(hic, rank=8, maxiters=5, seed=0)
>>> 0.0 <= result.final_fit <= 1.0
True
"""

from . import data  # noqa: F401  (submodule access: repro.data.load)
from . import reorder  # noqa: F401  (reordering extension)
from . import testing  # noqa: F401  (format verification oracles)
from . import tucker  # noqa: F401  (sparse Tucker substrate)
from .core.convert import MortonContext
from .core.hicoo import DEFAULT_BLOCK_BITS, HicooTensor, best_block_bits
from .core.io import load_hicoo, save_hicoo
from .core.streaming import hicoo_from_chunks, stream_tns
from .core.tuner import TunedConfig, tune
from .cpd.cp_apr import CpAprResult, cp_apr
from .cpd.model_selection import cp_als_restarts, rank_sweep
from .kernels.coo_variants import build_sort_plan, mttkrp_sorted
from .kernels.hicoo_ops import block_norms, densest_blocks, hicoo_ttm, hicoo_ttv
from .kernels.plan import MttkrpPlan, plan_mttkrp
from .core.params import HicooParams, analyze_block_sizes, recommend_block_bits
from .core.scheduler import Schedule, choose_strategy, schedule_mode
from .core.storage import compare_formats, format_table
from .core.superblock import SuperblockIndex, build_superblocks
from .cpd.cp_als import CpAlsResult, cp_als
from .cpd.ktensor import KruskalTensor
from .formats.coo import CooTensor
from .formats.csf import CsfTensor
from .formats.csf_suite import CsfSuite
from .kernels import elementwise  # noqa: F401 (sparse tensor algebra)
from .formats.dense import DenseTensor
from .kernels.mttkrp import MttkrpRun, mttkrp, mttkrp_parallel
from .parallel.machine import Machine

__version__ = "1.0.0"

__all__ = [
    "CooTensor",
    "CsfTensor",
    "CsfSuite",
    "elementwise",
    "DenseTensor",
    "HicooTensor",
    "DEFAULT_BLOCK_BITS",
    "best_block_bits",
    "MortonContext",
    "HicooParams",
    "analyze_block_sizes",
    "recommend_block_bits",
    "Schedule",
    "schedule_mode",
    "choose_strategy",
    "SuperblockIndex",
    "build_superblocks",
    "compare_formats",
    "format_table",
    "mttkrp",
    "mttkrp_parallel",
    "MttkrpRun",
    "cp_als",
    "CpAlsResult",
    "KruskalTensor",
    "Machine",
    "data",
    "reorder",
    "stream_tns",
    "hicoo_from_chunks",
    "tune",
    "TunedConfig",
    "cp_apr",
    "CpAprResult",
    "cp_als_restarts",
    "rank_sweep",
    "build_sort_plan",
    "mttkrp_sorted",
    "plan_mttkrp",
    "MttkrpPlan",
    "tucker",
    "testing",
    "save_hicoo",
    "load_hicoo",
    "hicoo_ttv",
    "hicoo_ttm",
    "block_norms",
    "densest_blocks",
    "__version__",
]
