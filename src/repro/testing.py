"""Public verification oracles for sparse-tensor formats and kernels.

Downstream users adding a new storage format (the reason a format paper
gets adopted) need a way to certify it.  This module packages the oracles
the internal test suite uses:

* :func:`assert_valid_format` — structural contract of
  :class:`~repro.formats.base.SparseTensorFormat`;
* :func:`assert_mttkrp_consistent` — MTTKRP equivalence against the dense
  reference on every mode;
* :func:`assert_roundtrip` — lossless conversion to/from COO;
* :func:`check_format` — all of the above over a battery of structured
  random tensors, returning a report dict.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from .formats.base import SparseTensorFormat
from .formats.coo import CooTensor
from .formats.dense import DenseTensor

__all__ = [
    "assert_valid_format",
    "assert_mttkrp_consistent",
    "assert_roundtrip",
    "check_format",
]

#: format constructor: CooTensor -> SparseTensorFormat
FormatFactory = Callable[[CooTensor], SparseTensorFormat]


def assert_valid_format(tensor: SparseTensorFormat) -> None:
    """Structural contract: shape/nnz sane, storage accounting positive and
    additive, repr usable."""
    if not isinstance(tensor, SparseTensorFormat):
        raise AssertionError(
            f"{type(tensor).__name__} is not a SparseTensorFormat")
    shape = tensor.shape
    if len(shape) < 1 or any(s < 1 for s in shape):
        raise AssertionError(f"invalid shape {shape}")
    if tensor.nnz < 0:
        raise AssertionError(f"negative nnz {tensor.nnz}")
    parts = tensor.storage_bytes()
    if not parts:
        raise AssertionError("storage_bytes returned no components")
    if any(v < 0 for v in parts.values()):
        raise AssertionError(f"negative storage component in {parts}")
    if tensor.total_bytes() != sum(parts.values()):
        raise AssertionError("total_bytes != sum of components")
    if tensor.nmodes != len(shape):
        raise AssertionError("nmodes inconsistent with shape")


def assert_roundtrip(tensor: SparseTensorFormat,
                     reference: CooTensor,
                     atol: float = 0.0) -> None:
    """``tensor.to_coo()`` must reproduce ``reference`` exactly (as a
    coordinate->value mapping)."""
    back = tensor.to_coo().sort_lexicographic()
    ref = reference.sort_lexicographic()
    if back.shape != ref.shape:
        raise AssertionError(
            f"shape changed in roundtrip: {back.shape} != {ref.shape}")
    if back.nnz != ref.nnz:
        raise AssertionError(
            f"nnz changed in roundtrip: {back.nnz} != {ref.nnz}")
    if not np.array_equal(back.indices, ref.indices):
        raise AssertionError("coordinates changed in roundtrip")
    if not np.allclose(back.values, ref.values, atol=atol):
        raise AssertionError("values changed in roundtrip")


def assert_mttkrp_consistent(tensor: SparseTensorFormat,
                             rank: int = 4,
                             seed: int = 0,
                             atol: float = 1e-8) -> None:
    """MTTKRP along every mode must match the dense reference."""
    coo = tensor.to_coo()
    dense = DenseTensor(coo.to_dense())
    rng = np.random.default_rng(seed)
    factors = [rng.normal(size=(s, rank)) for s in tensor.shape]
    for mode in range(tensor.nmodes):
        got = tensor.mttkrp(factors, mode)
        ref = dense.mttkrp(factors, mode)
        if got.shape != ref.shape:
            raise AssertionError(
                f"mode {mode}: MTTKRP shape {got.shape} != {ref.shape}")
        err = float(np.abs(got - ref).max()) if got.size else 0.0
        if err > atol:
            raise AssertionError(
                f"mode {mode}: MTTKRP mismatch, max abs error {err:.3e}")


def check_format(factory: FormatFactory,
                 shapes: Optional[Sequence[tuple]] = None,
                 nnz: int = 120, seed: int = 0) -> Dict[str, int]:
    """Run the full oracle battery over structured random tensors.

    Parameters
    ----------
    factory : builds the format under test from a COO tensor.
    shapes : test shapes (defaults cover 2-D, 3-D, 4-D and skewed modes).
    nnz : nonzeros per test tensor (capped by the index space).

    Returns a report dict (counts of tensors/oracles exercised).  Raises
    ``AssertionError`` with a precise message on the first violation.
    """
    if shapes is None:
        shapes = [(16, 16), (20, 12, 8), (9, 9, 9, 9), (128, 4, 30)]
    rng = np.random.default_rng(seed)
    checks = 0
    for shape in shapes:
        space = int(np.prod(shape))
        n = min(nnz, space // 2)
        flat = rng.choice(space, size=n, replace=False)
        inds = np.stack(np.unravel_index(flat, shape), axis=1)
        coo = CooTensor(shape, inds, rng.normal(size=n), sum_duplicates=False)
        tensor = factory(coo)
        assert_valid_format(tensor)
        assert_roundtrip(tensor, coo)
        assert_mttkrp_consistent(tensor)
        checks += 3
        # empty-tensor behaviour
        empty = factory(CooTensor.empty(shape))
        assert_valid_format(empty)
        if empty.nnz != 0:
            raise AssertionError("format invented nonzeros for an empty tensor")
        checks += 1
    return {"tensors": 2 * len(shapes), "oracle_checks": checks}
