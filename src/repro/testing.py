"""Public verification oracles and fault-injection hooks.

Downstream users adding a new storage format (the reason a format paper
gets adopted) need a way to certify it.  This module packages the oracles
the internal test suite uses:

* :func:`assert_valid_format` — structural contract of
  :class:`~repro.formats.base.SparseTensorFormat`;
* :func:`assert_mttkrp_consistent` — MTTKRP equivalence against the dense
  reference on every mode;
* :func:`assert_roundtrip` — lossless conversion to/from COO;
* :func:`check_format` — all of the above over a battery of structured
  random tensors, returning a report dict.

It also hosts the deterministic **chaos hooks** the fault-tolerance layer
(:mod:`repro.parallel.supervisor`) is tested against.  A
:class:`ChaosPlan` is a set of one-shot :class:`ChaosDirective` entries —
*kill worker w at its Nth task*, *hang*, *delay*, *corrupt the reply*,
*raise inside the kernel* — installed with :func:`install_chaos` and
consumed by the next supervised process-backend region.  Directives fire
exactly once per worker slot and respawned workers receive no plan, so a
chaos run is deterministic: the fault happens, recovery proceeds cleanly,
and the output can be compared bit-for-bit against the ``sim`` backend
(see ``tests/test_supervisor_chaos.py`` and ``docs/fault_tolerance.md``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .formats.base import SparseTensorFormat
from .formats.coo import CooTensor
from .formats.dense import DenseTensor

__all__ = [
    "assert_valid_format",
    "assert_mttkrp_consistent",
    "assert_roundtrip",
    "check_format",
    "ChaosDirective",
    "ChaosPlan",
    "ChaosError",
    "ChaosState",
    "chaos",
    "kill_at",
    "hang_at",
    "delay_at",
    "corrupt_at",
    "raise_at",
    "install_chaos",
    "take_chaos_plan",
    "clear_chaos",
    "replay_requests",
    "fuzz_frames",
]

#: format constructor: CooTensor -> SparseTensorFormat
FormatFactory = Callable[[CooTensor], SparseTensorFormat]


def assert_valid_format(tensor: SparseTensorFormat) -> None:
    """Structural contract: shape/nnz sane, storage accounting positive and
    additive, repr usable."""
    if not isinstance(tensor, SparseTensorFormat):
        raise AssertionError(
            f"{type(tensor).__name__} is not a SparseTensorFormat")
    shape = tensor.shape
    if len(shape) < 1 or any(s < 1 for s in shape):
        raise AssertionError(f"invalid shape {shape}")
    if tensor.nnz < 0:
        raise AssertionError(f"negative nnz {tensor.nnz}")
    parts = tensor.storage_bytes()
    if not parts:
        raise AssertionError("storage_bytes returned no components")
    if any(v < 0 for v in parts.values()):
        raise AssertionError(f"negative storage component in {parts}")
    if tensor.total_bytes() != sum(parts.values()):
        raise AssertionError("total_bytes != sum of components")
    if tensor.nmodes != len(shape):
        raise AssertionError("nmodes inconsistent with shape")


def assert_roundtrip(tensor: SparseTensorFormat,
                     reference: CooTensor,
                     atol: float = 0.0) -> None:
    """``tensor.to_coo()`` must reproduce ``reference`` exactly (as a
    coordinate->value mapping)."""
    back = tensor.to_coo().sort_lexicographic()
    ref = reference.sort_lexicographic()
    if back.shape != ref.shape:
        raise AssertionError(
            f"shape changed in roundtrip: {back.shape} != {ref.shape}")
    if back.nnz != ref.nnz:
        raise AssertionError(
            f"nnz changed in roundtrip: {back.nnz} != {ref.nnz}")
    if not np.array_equal(back.indices, ref.indices):
        raise AssertionError("coordinates changed in roundtrip")
    if not np.allclose(back.values, ref.values, atol=atol):
        raise AssertionError("values changed in roundtrip")


def assert_mttkrp_consistent(tensor: SparseTensorFormat,
                             rank: int = 4,
                             seed: int = 0,
                             atol: float = 1e-8) -> None:
    """MTTKRP along every mode must match the dense reference."""
    coo = tensor.to_coo()
    dense = DenseTensor(coo.to_dense())
    rng = np.random.default_rng(seed)
    factors = [rng.normal(size=(s, rank)) for s in tensor.shape]
    for mode in range(tensor.nmodes):
        got = tensor.mttkrp(factors, mode)
        ref = dense.mttkrp(factors, mode)
        if got.shape != ref.shape:
            raise AssertionError(
                f"mode {mode}: MTTKRP shape {got.shape} != {ref.shape}")
        err = float(np.abs(got - ref).max()) if got.size else 0.0
        if err > atol:
            raise AssertionError(
                f"mode {mode}: MTTKRP mismatch, max abs error {err:.3e}")


def check_format(factory: FormatFactory,
                 shapes: Optional[Sequence[tuple]] = None,
                 nnz: int = 120, seed: int = 0) -> Dict[str, int]:
    """Run the full oracle battery over structured random tensors.

    Parameters
    ----------
    factory : builds the format under test from a COO tensor.
    shapes : test shapes (defaults cover 2-D, 3-D, 4-D and skewed modes).
    nnz : nonzeros per test tensor (capped by the index space).

    Returns a report dict (counts of tensors/oracles exercised).  Raises
    ``AssertionError`` with a precise message on the first violation.
    """
    if shapes is None:
        shapes = [(16, 16), (20, 12, 8), (9, 9, 9, 9), (128, 4, 30)]
    rng = np.random.default_rng(seed)
    checks = 0
    for shape in shapes:
        space = int(np.prod(shape))
        n = min(nnz, space // 2)
        flat = rng.choice(space, size=n, replace=False)
        inds = np.stack(np.unravel_index(flat, shape), axis=1)
        coo = CooTensor(shape, inds, rng.normal(size=n), sum_duplicates=False)
        tensor = factory(coo)
        assert_valid_format(tensor)
        assert_roundtrip(tensor, coo)
        assert_mttkrp_consistent(tensor)
        checks += 3
        # empty-tensor behaviour
        empty = factory(CooTensor.empty(shape))
        assert_valid_format(empty)
        if empty.nnz != 0:
            raise AssertionError("format invented nonzeros for an empty tensor")
        checks += 1
    return {"tensors": 2 * len(shapes), "oracle_checks": checks}


# ----------------------------------------------------------------------
# deterministic fault injection (chaos hooks)
# ----------------------------------------------------------------------
#: the injectable fault kinds, in worker-loop order of effect
CHAOS_KINDS = ("kill", "hang", "delay", "corrupt", "raise")


class ChaosError(RuntimeError):
    """The exception an injected ``raise`` directive throws in the kernel."""


@dataclass(frozen=True)
class ChaosDirective:
    """One deterministic fault: fire on worker ``worker``'s ``at_task``-th
    compute task (1-based, per worker slot; pings don't count).

    kind:
      * ``"kill"``    — hard ``os._exit`` *after* computing, before replying
        (the worst case for retry idempotence: output rows already written);
      * ``"hang"``    — sleep ``seconds`` before replying (deadline test);
      * ``"delay"``   — sleep ``seconds``, then finish normally (no fault);
      * ``"corrupt"`` — reply with a garbled, unparseable message;
      * ``"raise"``   — raise :class:`ChaosError` inside the kernel.
    """

    kind: str
    worker: int
    at_task: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; expected one of "
                f"{CHAOS_KINDS}")
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.at_task < 1:
            raise ValueError(f"at_task is 1-based, got {self.at_task}")


@dataclass(frozen=True)
class ChaosPlan:
    """An immutable, picklable set of one-shot directives."""

    directives: Tuple[ChaosDirective, ...] = ()

    def for_worker(self, worker: int) -> List[ChaosDirective]:
        return [d for d in self.directives if d.worker == worker]


def chaos(*directives: ChaosDirective) -> ChaosPlan:
    """Bundle directives into a plan: ``chaos(kill_at(0), hang_at(1))``."""
    return ChaosPlan(directives=tuple(directives))


def kill_at(worker: int, at_task: int = 1) -> ChaosDirective:
    return ChaosDirective("kill", worker, at_task)


def hang_at(worker: int, at_task: int = 1,
            seconds: float = 3600.0) -> ChaosDirective:
    return ChaosDirective("hang", worker, at_task, seconds)


def delay_at(worker: int, at_task: int = 1,
             seconds: float = 0.05) -> ChaosDirective:
    return ChaosDirective("delay", worker, at_task, seconds)


def corrupt_at(worker: int, at_task: int = 1) -> ChaosDirective:
    return ChaosDirective("corrupt", worker, at_task)


def raise_at(worker: int, at_task: int = 1) -> ChaosDirective:
    return ChaosDirective("raise", worker, at_task)


class ChaosState:
    """Worker-side directive consumer (lives inside a pool worker process).

    Directives are *one-shot*: once drawn for a task they never fire again,
    so a retried task runs clean and the test observes exactly one fault
    per directive.
    """

    def __init__(self, plan: ChaosPlan, worker: int) -> None:
        self._pending = plan.for_worker(worker)

    def draw(self, task_seq: int) -> Optional[ChaosDirective]:
        for i, d in enumerate(self._pending):
            if d.at_task == task_seq:
                return self._pending.pop(i)
        return None


# one pending plan, installed by tests and consumed (atomically) by the
# next process-backend region — no API threading through the kernel stack
_chaos_lock = threading.Lock()
_chaos_plan: Optional[ChaosPlan] = None


def install_chaos(plan: ChaosPlan) -> None:
    """Arm ``plan`` for the next process-backend parallel region."""
    global _chaos_plan
    with _chaos_lock:
        _chaos_plan = plan


def take_chaos_plan() -> Optional[ChaosPlan]:
    """Pop the armed plan (one region consumes it; later regions run clean)."""
    global _chaos_plan
    with _chaos_lock:
        plan, _chaos_plan = _chaos_plan, None
        return plan


def clear_chaos() -> None:
    """Disarm any pending plan (test teardown)."""
    take_chaos_plan()


# ----------------------------------------------------------------------
# serve-daemon harness: traffic replay and protocol fuzzing
# ----------------------------------------------------------------------
def replay_requests(port, requests, nclients=1, host="127.0.0.1",
                    honor_arrivals=False, timeout=300.0):
    """Drive a request stream against a live daemon with ``nclients``
    concurrent connections; returns replies aligned with ``requests``.

    Requests are dealt round-robin to the clients, each client preserving
    its own submission order (the per-connection request/reply ordering
    the protocol guarantees).  Replies — including structured error
    replies, which are returned rather than raised — land at the index of
    the request that caused them, so the caller can compare each against
    its oracle regardless of interleaving.  A transport failure yields a
    synthetic ``{"ok": False, "error": {"code": "disconnected"}}`` entry.

    With ``honor_arrivals`` each client sleeps out the ``arrival_s``
    offsets of its own requests (open-loop-ish replay); without it the
    replay is closed-loop: every client fires as fast as replies return,
    which is the harsher concurrency test.
    """
    from .serve.client import ServeClient

    results: List[Optional[dict]] = [None] * len(requests)
    assigned: List[List[int]] = [[] for _ in range(max(1, int(nclients)))]
    for i in range(len(requests)):
        assigned[i % len(assigned)].append(i)

    def worker(indices: List[int]) -> None:
        import time as _time

        with ServeClient(host=host, port=port, timeout=timeout) as cli:
            t0 = _time.monotonic()
            for i in indices:
                req = {k: v for k, v in requests[i].items()
                       if k != "arrival_s"}
                if honor_arrivals and "arrival_s" in requests[i]:
                    lag = requests[i]["arrival_s"] - (_time.monotonic() - t0)
                    if lag > 0:
                        _time.sleep(lag)
                try:
                    results[i] = cli.submit(req, check=False)
                except (ConnectionError, OSError) as exc:
                    results[i] = {"ok": False,
                                  "error": {"code": "disconnected",
                                            "message": str(exc)}}

    threads = [threading.Thread(target=worker, args=(idx,), daemon=True)
               for idx in assigned if idx]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def fuzz_frames(seed: int = 0, n: int = 64) -> List[Tuple[str, bytes]]:
    """A deterministic battery of hostile wire frames for the serve
    protocol: random binary garbage, truncated/unterminated JSON,
    non-object payloads, unknown and ill-typed ops, out-of-bounds
    numeric fields, oversized frames.  Returns ``(label, payload)``
    pairs; every payload must elicit a structured error reply (or a
    clean connection close for desynchronizing frames) — never a
    traceback and never daemon death.
    """
    import json as _json

    rng = np.random.default_rng(seed)
    frames: List[Tuple[str, bytes]] = [
        ("empty", b"\n"),
        ("whitespace", b"   \t  \n"),
        ("not_json", b"{not json}\n"),
        ("bare_word", b"hello\n"),
        ("json_array", b"[1,2,3]\n"),
        ("json_scalar", b"42\n"),
        ("json_null", b"null\n"),
        ("missing_op", b'{"tensor": "t0"}\n'),
        ("unknown_op", b'{"op": "explode"}\n'),
        ("op_wrong_type", b'{"op": 7}\n'),
        ("missing_tensor", b'{"op": "mttkrp", "rank": 4}\n'),
        ("tensor_wrong_type", b'{"op": "mttkrp", "tensor": 3, "rank": 4}\n'),
        ("rank_zero", b'{"op": "mttkrp", "tensor": "t0", "rank": 0}\n'),
        ("rank_huge", b'{"op": "mttkrp", "tensor": "t0", "rank": 99999}\n'),
        ("rank_bool", b'{"op": "mttkrp", "tensor": "t0", "rank": true}\n'),
        ("rank_float",
         b'{"op": "mttkrp", "tensor": "t0", "rank": 4.5}\n'),
        ("negative_mode",
         b'{"op": "mttkrp", "tensor": "t0", "rank": 4, "mode": -1}\n'),
        ("unregistered_tensor",
         b'{"op": "mttkrp", "tensor": "no-such", "rank": 4, "mode": 0}\n'),
        ("bad_register_kind",
         b'{"op": "register", "name": "x", "spec": {"kind": "evil", '
         b'"shape": [4], "nnz": 2}}\n'),
        ("bad_register_shape",
         b'{"op": "register", "name": "x", "spec": {"kind": "random", '
         b'"shape": "big", "nnz": 2}}\n'),
        ("register_nnz_overflow",
         b'{"op": "register", "name": "x", "spec": {"kind": "random", '
         b'"shape": [4, 4], "nnz": 999999999999}}\n'),
        ("truncated_json", b'{"op": "mttkrp", "tensor": "t0"'),
        ("oversized",
         b'{"op": "ping", "pad": "' + b"A" * (1 << 20) + b'"}\n'),
        ("utf8_garbage", b"\xff\xfe{\xba\xad\n"),
        ("nested_bomb", b'[' * 600 + b']' * 600 + b"\n"),
    ]
    while len(frames) < n:
        kind = int(rng.integers(0, 3))
        if kind == 0:  # random bytes
            blob = rng.integers(0, 256, size=int(rng.integers(1, 200)),
                                dtype=np.uint8).tobytes()
            frames.append((f"random_bytes_{len(frames)}",
                           blob.replace(b"\n", b"x") + b"\n"))
        elif kind == 1:  # random JSON object with junk fields
            obj = {"op": ["mttkrp", "ping", "zzz", 12][
                int(rng.integers(0, 4))]}
            for j in range(int(rng.integers(0, 4))):
                obj[f"k{j}"] = [None, True, -1, "x", [1], {"a": 1}][
                    int(rng.integers(0, 6))]
            frames.append((f"random_obj_{len(frames)}",
                           _json.dumps(obj).encode() + b"\n"))
        else:  # valid-ish job with one corrupted field
            obj = {"op": "mttkrp", "tensor": "t0", "rank": 4, "mode": 0}
            field = ["rank", "mode", "seed", "priority"][
                int(rng.integers(0, 4))]
            obj[field] = [-(2**40), 2**40, "NaN", None][
                int(rng.integers(0, 4))]
            frames.append((f"corrupt_{field}_{len(frames)}",
                           _json.dumps(obj).encode() + b"\n"))
    return frames[:n]
